//! Arena-backed DOM tree and the tree queries CERES needs.
//!
//! All nodes of a page live in one `Vec`; [`NodeId`] is a `u32` index. This
//! keeps per-page allocation low (important when processing hundreds of
//! thousands of pages) and makes node identity trivially copyable, which the
//! annotation bookkeeping (sets of mention nodes, ancestor maps) leans on.

use crate::xpath::{Step, XPath};
use ceres_text::FxHashSet;
use std::fmt::Write as _;

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Payload of a DOM node: an element with attributes, or a text run.
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// An element such as `<div class="cast">`. Attribute names are
    /// lowercased; values are entity-decoded. Order of attributes is the
    /// source order.
    Element { tag: String, attrs: Vec<(String, String)> },
    /// A text run (entity-decoded, whitespace preserved as in source).
    Text(String),
}

/// A single DOM node.
#[derive(Debug, Clone)]
pub struct Node {
    pub parent: Option<NodeId>,
    pub children: Vec<NodeId>,
    pub kind: NodeKind,
}

impl Node {
    pub fn is_element(&self) -> bool {
        matches!(self.kind, NodeKind::Element { .. })
    }

    pub fn tag(&self) -> Option<&str> {
        match &self.kind {
            NodeKind::Element { tag, .. } => Some(tag),
            NodeKind::Text(_) => None,
        }
    }

    /// Look up an attribute value by (lowercased) name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        match &self.kind {
            NodeKind::Element { attrs, .. } => {
                attrs.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
            }
            NodeKind::Text(_) => None,
        }
    }

    pub fn attrs(&self) -> &[(String, String)] {
        match &self.kind {
            NodeKind::Element { attrs, .. } => attrs,
            NodeKind::Text(_) => &[],
        }
    }
}

/// A parsed page: an arena of nodes under a synthetic `#document` root.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Document {
    /// Create an empty document containing only the synthetic root.
    pub fn new() -> Self {
        let root = Node {
            parent: None,
            children: Vec::new(),
            kind: NodeKind::Element { tag: "#document".to_string(), attrs: Vec::new() },
        };
        Document { nodes: vec![root], root: NodeId(0) }
    }

    /// The synthetic `#document` root (never included in XPaths).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Append a new element under `parent`; returns its id.
    pub fn push_element(
        &mut self,
        parent: NodeId,
        tag: String,
        attrs: Vec<(String, String)>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            parent: Some(parent),
            children: Vec::new(),
            kind: NodeKind::Element { tag, attrs },
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Append a text node under `parent`; returns its id.
    pub fn push_text(&mut self, parent: NodeId, text: String) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            parent: Some(parent),
            children: Vec::new(),
            kind: NodeKind::Text(text),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// All node ids in arena (= document) order.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate over the subtree rooted at `id` (preorder, including `id`).
    pub fn subtree(&self, id: NodeId) -> SubtreeIter<'_> {
        SubtreeIter { doc: self, stack: vec![id] }
    }

    /// Ancestor chain starting at the parent of `id`, ending at the synthetic
    /// root (inclusive).
    pub fn ancestors(&self, id: NodeId) -> AncestorIter<'_> {
        AncestorIter { doc: self, next: self.node(id).parent }
    }

    /// Depth of a node (root children are depth 1; the root itself 0).
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).count()
    }

    /// Deepest node depth in the document (0 when only the root exists).
    /// One forward pass: nodes are arena-appended parent-before-child, so
    /// every parent's depth is known by the time its children are visited.
    pub fn max_depth(&self) -> usize {
        let mut depth = vec![0u32; self.nodes.len()];
        let mut max = 0u32;
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(p) = node.parent {
                depth[i] = depth[p.index()] + 1;
                max = max.max(depth[i]);
            }
        }
        max as usize
    }

    /// True if `ancestor` is a proper ancestor of `id`.
    pub fn is_ancestor(&self, ancestor: NodeId, id: NodeId) -> bool {
        self.ancestors(id).any(|a| a == ancestor)
    }

    /// The text directly owned by an element: its direct text children
    /// concatenated, whitespace collapsed and trimmed. Empty for text nodes
    /// (use the parent element) and for elements without direct text.
    pub fn own_text(&self, id: NodeId) -> String {
        let mut out = String::new();
        for &child in &self.node(id).children {
            if let NodeKind::Text(t) = &self.node(child).kind {
                for token in t.split_whitespace() {
                    if !out.is_empty() {
                        out.push(' ');
                    }
                    out.push_str(token);
                }
            }
        }
        out
    }

    /// All text in the subtree of `id`, whitespace-normalized.
    pub fn deep_text(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.subtree(id) {
            if let NodeKind::Text(t) = &self.node(n).kind {
                for token in t.split_whitespace() {
                    if !out.is_empty() {
                        out.push(' ');
                    }
                    out.push_str(token);
                }
            }
        }
        out
    }

    /// The *text fields* of the page: element nodes with non-empty
    /// [`own_text`](Self::own_text), in document order. These are the units
    /// CERES annotates, classifies, and extracts (paper §2.1: "most entity
    /// names correspond to full texts in a DOM tree node").
    pub fn text_fields(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for id in self.all_nodes() {
            if self.node(id).is_element() && id != self.root && !self.own_text(id).is_empty() {
                out.push(id);
            }
        }
        out
    }

    /// 1-based position of `id` among its same-tag element siblings — the
    /// index used in absolute XPath steps.
    pub fn xpath_index(&self, id: NodeId) -> u32 {
        let Some(parent) = self.node(id).parent else { return 1 };
        let tag = self.node(id).tag();
        let mut index = 0;
        for &sib in &self.nodes[parent.index()].children {
            if self.node(sib).tag() == tag {
                index += 1;
                if sib == id {
                    return index;
                }
            }
        }
        debug_assert!(false, "node not found among its parent's children");
        1
    }

    /// 0-based position of `id` among *all element* siblings (the "sibling
    /// number" of the structural feature 4-tuples, §4.2).
    pub fn element_sibling_number(&self, id: NodeId) -> usize {
        let Some(parent) = self.node(id).parent else { return 0 };
        let mut n = 0;
        for &sib in &self.nodes[parent.index()].children {
            if sib == id {
                return n;
            }
            if self.node(sib).is_element() {
                n += 1;
            }
        }
        0
    }

    /// Element siblings of `id` within `width` positions on either side,
    /// excluding `id` itself. Returns `(offset, node)` pairs where `offset`
    /// is negative for preceding siblings.
    pub fn sibling_window(&self, id: NodeId, width: usize) -> Vec<(isize, NodeId)> {
        let mut out = Vec::new();
        self.sibling_window_into(id, width, &mut out);
        out
    }

    /// Allocation-reusing [`Document::sibling_window`]: clears `out` and
    /// fills it with the same `(offset, node)` pairs. The feature extractor
    /// calls this once per ancestor level of every node on every page —
    /// the buffer lives in its scratch state instead of being reallocated.
    pub fn sibling_window_into(&self, id: NodeId, width: usize, out: &mut Vec<(isize, NodeId)>) {
        out.clear();
        let Some(parent) = self.node(id).parent else { return };
        let children = &self.nodes[parent.index()].children;
        // Pass 1: position of `id` among its element siblings.
        let mut pos = None;
        let mut i = 0usize;
        for &c in children {
            if self.node(c).is_element() {
                if c == id {
                    pos = Some(i);
                }
                i += 1;
            }
        }
        let Some(pos) = pos else { return };
        let lo = pos.saturating_sub(width);
        let hi = pos + width;
        // Pass 2: emit the window, excluding `id` itself.
        let mut i = 0usize;
        for &c in children {
            if self.node(c).is_element() {
                if (lo..=hi).contains(&i) && c != id {
                    out.push((i as isize - pos as isize, c));
                }
                i += 1;
            }
        }
    }

    /// The absolute XPath of an element node, e.g.
    /// `/html[1]/body[1]/div[3]/span[2]`. Text nodes are addressed through
    /// their parent element (CERES classifies elements, not text runs).
    pub fn xpath(&self, id: NodeId) -> XPath {
        let target =
            if self.node(id).is_element() { id } else { self.node(id).parent.unwrap_or(self.root) };
        let mut steps = Vec::new();
        let mut cur = target;
        while cur != self.root {
            let tag = self.node(cur).tag().unwrap_or("#text").to_string();
            steps.push(Step { tag, index: self.xpath_index(cur) });
            match self.node(cur).parent {
                Some(p) => cur = p,
                None => break,
            }
        }
        steps.reverse();
        XPath(steps)
    }

    /// Resolve an absolute XPath back to a node, if it exists on this page.
    pub fn resolve_xpath(&self, path: &XPath) -> Option<NodeId> {
        let mut cur = self.root;
        for step in &path.0 {
            let mut seen = 0u32;
            let mut found = None;
            for &child in &self.nodes[cur.index()].children {
                if self.node(child).tag() == Some(step.tag.as_str()) {
                    seen += 1;
                    if seen == step.index {
                        found = Some(child);
                        break;
                    }
                }
            }
            cur = found?;
        }
        Some(cur)
    }

    /// Algorithm 2, line 5: the **highest-level** ancestor of `mention` whose
    /// subtree contains no node from `others`. "Highest level" means closest
    /// to the root; we walk up from `mention` and stop just below the first
    /// ancestor that would pull in another mention.
    pub fn highest_exclusive_ancestor(&self, mention: NodeId, others: &[NodeId]) -> NodeId {
        let other_set: FxHashSet<NodeId> =
            others.iter().copied().filter(|&o| o != mention).collect();
        if other_set.is_empty() {
            // No competing mention: the whole page is exclusive; use the
            // topmost real element under the document root.
            return self.ancestors(mention).filter(|&a| a != self.root).last().unwrap_or(mention);
        }
        let mut best = mention;
        for anc in self.ancestors(mention) {
            if anc == self.root {
                break;
            }
            let contains_other = self.subtree(anc).any(|n| other_set.contains(&n));
            if contains_other {
                break;
            }
            best = anc;
        }
        best
    }

    /// Relative tree path from `from` to `to`, formatted as
    /// `^k/tag[i]/tag[j]` (go up `k` levels from `from`, then down the given
    /// steps). Used in node-text features: the classifier learns e.g. "the
    /// string *Director:* appears at `^2/span[1]` from this node".
    pub fn relative_path(&self, from: NodeId, to: NodeId) -> String {
        let mut out = String::new();
        self.relative_path_into(from, to, &mut out);
        out
    }

    /// [`Document::relative_path`] **appending** to `out` (not clearing it),
    /// so feature names can be assembled around the path in one buffer.
    pub fn relative_path_into(&self, from: NodeId, to: NodeId, out: &mut String) {
        // Collect ancestor chains (self included) up to the root.
        let chain = |mut n: NodeId| -> Vec<NodeId> {
            let mut v = vec![n];
            while let Some(p) = self.node(n).parent {
                v.push(p);
                n = p;
            }
            v
        };
        let from_chain = chain(from);
        let to_chain = chain(to);
        let from_set: FxHashSet<NodeId> = from_chain.iter().copied().collect();
        // Lowest common ancestor = first node of to_chain present in from_chain.
        let lca = *to_chain.iter().find(|n| from_set.contains(n)).unwrap_or(&self.root);
        let up = from_chain.iter().position(|&n| n == lca).unwrap_or(0);
        let _ = write!(out, "^{up}");
        // Steps from the LCA down to `to`.
        let lca_pos = to_chain.iter().position(|&n| n == lca).unwrap_or(0);
        for &n in to_chain[..lca_pos].iter().rev() {
            let tag = self.node(n).tag().unwrap_or("#text");
            let _ = write!(out, "/{}[{}]", tag, self.xpath_index(n));
        }
    }

    /// Serialize back to HTML (used in tests for parse/serialize roundtrips
    /// and by examples to show pages).
    pub fn to_html(&self) -> String {
        let mut out = String::new();
        for &child in &self.nodes[self.root.index()].children {
            self.write_node(child, &mut out);
        }
        out
    }

    fn write_node(&self, id: NodeId, out: &mut String) {
        match &self.node(id).kind {
            NodeKind::Text(t) => out.push_str(&crate::escape::escape_text(t)),
            NodeKind::Element { tag, attrs } => {
                out.push('<');
                out.push_str(tag);
                for (k, v) in attrs {
                    let _ = write!(out, " {}=\"{}\"", k, crate::escape::escape_attr(v));
                }
                out.push('>');
                for &child in &self.node(id).children {
                    self.write_node(child, out);
                }
                let _ = write!(out, "</{tag}>");
            }
        }
    }

    /// Structural sanity check used by tests: every child's parent pointer
    /// matches, and every non-root node is reachable from the root.
    pub fn check_consistency(&self) -> Result<(), String> {
        for id in self.all_nodes() {
            for &child in &self.node(id).children {
                if self.node(child).parent != Some(id) {
                    return Err(format!("child {child:?} of {id:?} has wrong parent"));
                }
            }
        }
        let reachable: usize = self.subtree(self.root).count();
        if reachable != self.nodes.len() {
            return Err(format!("{} nodes, {} reachable from root", self.nodes.len(), reachable));
        }
        Ok(())
    }
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

/// Preorder subtree iterator.
pub struct SubtreeIter<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for SubtreeIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let children = &self.doc.node(id).children;
        self.stack.extend(children.iter().rev().copied());
        Some(id)
    }
}

/// Iterator over ancestors, nearest first, ending at the synthetic root.
pub struct AncestorIter<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for AncestorIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.doc.node(id).parent;
        Some(id)
    }
}
