//! Minimal HTML escaping/unescaping shared by the parser (entity decoding)
//! and the synthetic-site renderer (entity encoding).

/// Escape a string for use as HTML text content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escape a string for use inside a double-quoted HTML attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Decode the common HTML entities plus numeric character references.
/// Unknown entities are passed through verbatim (tolerant parsing).
pub fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            if let Some((decoded, consumed)) = decode_entity(&s[i..]) {
                out.push_str(&decoded);
                i += consumed;
                continue;
            }
        }
        // Advance by one full UTF-8 character.
        let ch_len = utf8_len(bytes[i]);
        out.push_str(&s[i..i + ch_len]);
        i += ch_len;
    }
    out
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b < 0xE0 => 2,
        b if b < 0xF0 => 3,
        _ => 4,
    }
}

/// Try to decode an entity at the start of `s` (which begins with `&`).
/// Returns the decoded text and the number of bytes consumed.
fn decode_entity(s: &str) -> Option<(String, usize)> {
    let semi = s.find(';').filter(|&i| i <= 12)?;
    let body = &s[1..semi];
    let decoded = match body {
        "amp" => "&".to_string(),
        "lt" => "<".to_string(),
        "gt" => ">".to_string(),
        "quot" => "\"".to_string(),
        "apos" => "'".to_string(),
        "nbsp" => " ".to_string(),
        _ => {
            let rest = body.strip_prefix('#')?;
            let code = if let Some(hex) = rest.strip_prefix(['x', 'X']) {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                rest.parse::<u32>().ok()?
            };
            char::from_u32(code)?.to_string()
        }
    };
    Some((decoded, semi + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn escape_and_unescape_text() {
        assert_eq!(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
        assert_eq!(unescape("a &lt; b &amp; c &gt; d"), "a < b & c > d");
    }

    #[test]
    fn escape_attr_quotes() {
        assert_eq!(escape_attr(r#"say "hi""#), "say &quot;hi&quot;");
    }

    #[test]
    fn numeric_entities() {
        assert_eq!(unescape("&#65;&#x42;"), "AB");
        assert_eq!(unescape("&#xE9;"), "é");
    }

    #[test]
    fn unknown_entities_pass_through() {
        assert_eq!(unescape("&bogus; & &"), "&bogus; & &");
        assert_eq!(unescape("&#xZZ;"), "&#xZZ;");
    }

    #[test]
    fn nbsp_becomes_space() {
        assert_eq!(unescape("Spike&nbsp;Lee"), "Spike Lee");
    }

    proptest! {
        #[test]
        fn roundtrip_text(s in ".*") {
            prop_assert_eq!(unescape(&escape_text(&s)), s);
        }

        #[test]
        fn roundtrip_attr(s in ".*") {
            prop_assert_eq!(unescape(&escape_attr(&s)), s);
        }

        #[test]
        fn unescape_never_panics(s in ".*") {
            let _ = unescape(&s);
        }
    }
}
