//! Absolute XPaths.
//!
//! CERES identifies DOM nodes by their absolute XPath (paper §2.1) and uses
//! two XPath-derived signals:
//!
//! * the Levenshtein **string** distance between XPaths drives the global
//!   clustering of relation-mention candidates (§3.2.2);
//! * the set of step indices at which two positive examples differ defines a
//!   "list" for negative-sampling exclusion (§4.1).

use ceres_text::{levenshtein, levenshtein_slices};
use std::fmt;
use std::str::FromStr;

/// One step of an absolute XPath: a tag name plus the 1-based index among
/// same-tag siblings, e.g. `div[3]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Step {
    pub tag: String,
    pub index: u32,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.tag, self.index)
    }
}

/// An absolute XPath: `/html[1]/body[1]/div[3]/span[2]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct XPath(pub Vec<Step>);

impl XPath {
    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Character-level Levenshtein distance between the rendered paths —
    /// exactly the distance function of paper §3.2.2.
    pub fn char_distance(&self, other: &XPath) -> usize {
        levenshtein(&self.to_string(), &other.to_string())
    }

    /// Step-level Levenshtein distance (each `tag[i]` step is one symbol).
    /// Used by the distance-function ablation.
    pub fn step_distance(&self, other: &XPath) -> usize {
        levenshtein_slices(&self.0, &other.0)
    }

    /// True if the two paths have the same tags throughout and differ only
    /// in step indices. Such pairs typically denote members of the same
    /// template list (e.g. successive cast rows).
    pub fn same_shape(&self, other: &XPath) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| a.tag == b.tag)
    }

    /// Positions at which two same-shape paths have different indices.
    /// Empty when the paths are identical or have different shapes.
    pub fn differing_index_positions(&self, other: &XPath) -> Vec<usize> {
        if !self.same_shape(other) {
            return Vec::new();
        }
        self.0
            .iter()
            .zip(&other.0)
            .enumerate()
            .filter(|(_, (a, b))| a.index != b.index)
            .map(|(i, _)| i)
            .collect()
    }

    /// True if `self` matches `other` when the step indices at `wildcard`
    /// positions are ignored (the generalized-XPath test used by negative
    /// sampling and by the VERTEX++ rules).
    pub fn matches_with_wildcards(&self, other: &XPath, wildcard: &[usize]) -> bool {
        if !self.same_shape(other) {
            return false;
        }
        self.0
            .iter()
            .zip(&other.0)
            .enumerate()
            .all(|(i, (a, b))| a.tag == b.tag && (a.index == b.index || wildcard.contains(&i)))
    }
}

impl fmt::Display for XPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "/");
        }
        for step in &self.0 {
            write!(f, "/{step}")?;
        }
        Ok(())
    }
}

/// Error produced when parsing an XPath string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseXPathError(pub String);

impl fmt::Display for ParseXPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid xpath: {}", self.0)
    }
}

impl std::error::Error for ParseXPathError {}

impl FromStr for XPath {
    type Err = ParseXPathError;

    /// Parse `/tag[i]/tag[j]/...`. A bare `/` parses to the empty path.
    /// Steps without an explicit index (`/div`) default to index 1.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s
            .strip_prefix('/')
            .ok_or_else(|| ParseXPathError(format!("must start with '/': {s}")))?;
        if body.is_empty() {
            return Ok(XPath(Vec::new()));
        }
        let mut steps = Vec::new();
        for part in body.split('/') {
            if part.is_empty() {
                return Err(ParseXPathError(format!("empty step in {s}")));
            }
            let (tag, index) = match part.find('[') {
                Some(open) => {
                    let close = part
                        .rfind(']')
                        .ok_or_else(|| ParseXPathError(format!("unclosed '[' in {part}")))?;
                    if close < open {
                        return Err(ParseXPathError(format!("misordered brackets in {part}")));
                    }
                    let idx: u32 = part[open + 1..close]
                        .parse()
                        .map_err(|_| ParseXPathError(format!("bad index in {part}")))?;
                    (&part[..open], idx)
                }
                None => (part, 1),
            };
            if tag.is_empty() {
                return Err(ParseXPathError(format!("empty tag in {part}")));
            }
            steps.push(Step { tag: tag.to_string(), index });
        }
        Ok(XPath(steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn xp(s: &str) -> XPath {
        s.parse().unwrap()
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let p = xp("/html[1]/body[1]/div[3]/span[2]");
        assert_eq!(p.to_string(), "/html[1]/body[1]/div[3]/span[2]");
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn default_index_is_one() {
        assert_eq!(xp("/html/body"), xp("/html[1]/body[1]"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("html[1]".parse::<XPath>().is_err());
        assert!("//div".parse::<XPath>().is_err());
        assert!("/div[".parse::<XPath>().is_err());
        assert!("/div[x]".parse::<XPath>().is_err());
        assert!("/[3]".parse::<XPath>().is_err());
    }

    #[test]
    fn figure2_distances() {
        // Acted-in XPaths from Figure 2: differ at two node indices.
        let winfrey =
            xp("/html[1]/body[1]/div[1]/div[2]/div[1]/div[1]/div[4]/div[3]/div[68]/b[1]/a[1]");
        let mckellen =
            xp("/html[1]/body[1]/div[1]/div[2]/div[1]/div[1]/div[4]/div[2]/div[61]/b[1]/a[1]");
        assert_eq!(winfrey.step_distance(&mckellen), 2);
        // Char distance counts the two differing digit runs.
        assert!(winfrey.char_distance(&mckellen) >= 2);
        assert!(winfrey.same_shape(&mckellen));
        assert_eq!(winfrey.differing_index_positions(&mckellen), vec![7, 8]);
    }

    #[test]
    fn wildcard_matching() {
        let a = xp("/html[1]/body[1]/ul[1]/li[1]");
        let b = xp("/html[1]/body[1]/ul[1]/li[9]");
        let c = xp("/html[1]/body[1]/ol[1]/li[9]");
        assert!(a.matches_with_wildcards(&b, &[3]));
        assert!(!a.matches_with_wildcards(&b, &[2]));
        assert!(!a.matches_with_wildcards(&c, &[3]));
    }

    #[test]
    fn empty_path() {
        let p = xp("/");
        assert!(p.is_empty());
        assert_eq!(p.to_string(), "/");
    }

    proptest! {
        #[test]
        fn roundtrip_random_paths(
            steps in proptest::collection::vec(("[a-z]{1,8}", 1u32..40), 0..12)
        ) {
            let p = XPath(steps.into_iter().map(|(tag, index)| Step { tag, index }).collect());
            let rendered = p.to_string();
            let reparsed: XPath = rendered.parse().unwrap();
            prop_assert_eq!(p, reparsed);
        }

        #[test]
        fn step_distance_leq_char_distance_shape(
            steps in proptest::collection::vec(("[a-z]{1,4}", 1u32..10), 1..8)
        ) {
            let p = XPath(steps.iter().cloned().map(|(tag, index)| Step { tag, index }).collect());
            // Identity holds under both metrics.
            prop_assert_eq!(p.step_distance(&p), 0);
            prop_assert_eq!(p.char_distance(&p), 0);
        }
    }
}
