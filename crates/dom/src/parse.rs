//! A tolerant HTML parser.
//!
//! Real semi-structured websites (and the CommonCrawl long tail especially)
//! serve malformed markup: unclosed tags, stray `</div>`s, unquoted
//! attributes, raw `<` in text. The parser never fails — it produces the
//! best-effort tree a browser roughly would — and is property-tested to
//! never panic and to always produce a structurally consistent arena.
//!
//! Deliberate simplifications relative to the WHATWG algorithm (documented
//! trade-offs for a research reproduction):
//!
//! * no implicit `<html>/<head>/<body>` synthesis — the tree mirrors source
//!   structure (our corpus generator always emits them; foreign input simply
//!   yields whatever it contains);
//! * no active-formatting-element reconstruction (`<b><i></b></i>` style
//!   misnesting closes conservatively);
//! * `<script>`/`<style>` contents are skipped entirely — CERES never
//!   extracts from them and dropping them avoids matching KB entities inside
//!   JavaScript.

use crate::arena::{Document, NodeId};
use crate::escape::unescape;

/// Elements that never have children (void elements, HTML spec §13.1.2).
const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// Elements whose raw text content runs to the matching close tag.
const RAW_TEXT_ELEMENTS: &[&str] = &["script", "style"];

fn is_void(tag: &str) -> bool {
    VOID_ELEMENTS.contains(&tag)
}

fn is_raw_text(tag: &str) -> bool {
    RAW_TEXT_ELEMENTS.contains(&tag)
}

/// Parse an HTML string into a [`Document`]. Infallible; tolerant of
/// malformed input.
pub fn parse_html(html: &str) -> Document {
    Parser::new(html).run()
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    doc: Document,
    /// Stack of currently-open elements; the synthetic root sits at the
    /// bottom and is never popped.
    stack: Vec<(NodeId, String)>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        let doc = Document::new();
        let root = doc.root();
        Parser { input, pos: 0, doc, stack: vec![(root, "#document".to_string())] }
    }

    fn run(mut self) -> Document {
        while self.pos < self.input.len() {
            if self.input[self.pos..].starts_with('<') {
                self.consume_markup();
            } else {
                self.consume_text();
            }
        }
        self.doc
    }

    fn current_parent(&self) -> NodeId {
        self.stack.last().expect("stack never empty").0
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    /// Consume a text run up to the next `<` and append it (entity-decoded)
    /// unless it is pure whitespace.
    fn consume_text(&mut self) {
        let rest = self.rest();
        let end = rest.find('<').unwrap_or(rest.len());
        let raw = &rest[..end];
        self.pos += end;
        if !raw.trim().is_empty() {
            let decoded = unescape(raw);
            let parent = self.current_parent();
            self.doc.push_text(parent, decoded);
        }
    }

    /// Consume something starting with `<`.
    fn consume_markup(&mut self) {
        let rest = self.rest();
        debug_assert!(rest.starts_with('<'));
        if rest.starts_with("<!--") {
            // Comment: skip to `-->` (or EOF).
            match rest.find("-->") {
                Some(end) => self.pos += end + 3,
                None => self.pos = self.input.len(),
            }
        } else if rest.starts_with("<!") || rest.starts_with("<?") {
            // Doctype or processing instruction: skip to `>`.
            match rest.find('>') {
                Some(end) => self.pos += end + 1,
                None => self.pos = self.input.len(),
            }
        } else if rest.starts_with("</") {
            self.consume_close_tag();
        } else if rest.len() > 1 && rest.as_bytes()[1].is_ascii_alphabetic() {
            self.consume_open_tag();
        } else {
            // A stray '<' (e.g. "a < b"): treat as text.
            let parent = self.current_parent();
            self.doc.push_text(parent, "<".to_string());
            self.pos += 1;
        }
    }

    fn consume_close_tag(&mut self) {
        let rest = self.rest();
        let end = match rest.find('>') {
            Some(e) => e,
            None => {
                self.pos = self.input.len();
                return;
            }
        };
        let name = rest[2..end].trim().to_ascii_lowercase();
        self.pos += end + 1;
        // Pop to the matching open element, if any; otherwise ignore the
        // stray close tag (tolerant behaviour).
        if let Some(depth) = self.stack.iter().rposition(|(_, tag)| *tag == name) {
            if depth > 0 {
                self.stack.truncate(depth);
            }
        }
    }

    fn consume_open_tag(&mut self) {
        let rest = self.rest();
        let bytes = rest.as_bytes();
        // Find the end of the tag, respecting quoted attribute values.
        let mut i = 1;
        let mut quote: Option<u8> = None;
        while i < bytes.len() {
            let b = bytes[i];
            match quote {
                Some(q) => {
                    if b == q {
                        quote = None;
                    }
                }
                None => match b {
                    b'"' | b'\'' => quote = Some(b),
                    b'>' => break,
                    _ => {}
                },
            }
            i += 1;
        }
        if i >= bytes.len() {
            // Unterminated tag at EOF: drop it.
            self.pos = self.input.len();
            return;
        }
        let inner = &rest[1..i]; // without '<' and '>'
        self.pos += i + 1;

        let (inner, self_closing) = match inner.strip_suffix('/') {
            Some(stripped) => (stripped, true),
            None => (inner, false),
        };

        let mut chars = inner.char_indices();
        let name_end =
            chars.find(|(_, c)| c.is_whitespace()).map(|(idx, _)| idx).unwrap_or(inner.len());
        let tag = inner[..name_end].to_ascii_lowercase();
        if tag.is_empty() {
            return;
        }
        let attrs = parse_attrs(&inner[name_end..]);

        let parent = self.current_parent();
        let id = self.doc.push_element(parent, tag.clone(), attrs);

        if is_raw_text(&tag) && !self_closing {
            // Skip raw content up to the matching close tag.
            let close = format!("</{tag}");
            let rest = self.rest();
            let lower = rest.to_ascii_lowercase();
            match lower.find(&close) {
                Some(start) => {
                    let after = &rest[start..];
                    let skip = after.find('>').map(|e| start + e + 1).unwrap_or(rest.len());
                    self.pos += skip;
                }
                None => self.pos = self.input.len(),
            }
            return;
        }

        if !self_closing && !is_void(&tag) {
            self.stack.push((id, tag));
        }
    }
}

/// Parse the attribute list of a tag body (everything after the tag name).
fn parse_attrs(s: &str) -> Vec<(String, String)> {
    let mut attrs = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // Skip whitespace.
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        // Attribute name: up to '=', whitespace, or end.
        let name_start = i;
        while i < bytes.len() && bytes[i] != b'=' && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let name = s[name_start..i].to_ascii_lowercase();
        if name.is_empty() {
            i += 1;
            continue;
        }
        // Skip whitespace before a possible '='.
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let mut value = String::new();
        if i < bytes.len() && bytes[i] == b'=' {
            i += 1;
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i < bytes.len() && (bytes[i] == b'"' || bytes[i] == b'\'') {
                let q = bytes[i];
                i += 1;
                let val_start = i;
                while i < bytes.len() && bytes[i] != q {
                    i += 1;
                }
                value = unescape(&s[val_start..i]);
                i += 1; // past the closing quote (or EOF)
            } else {
                let val_start = i;
                while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                value = unescape(&s[val_start..i]);
            }
        }
        attrs.push((name, value));
    }
    attrs
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_simple_page() {
        let doc = parse_html("<html><body><div class=\"a\">Hello <b>world</b></div></body></html>");
        doc.check_consistency().unwrap();
        let fields = doc.text_fields();
        assert_eq!(fields.len(), 2);
        assert_eq!(doc.own_text(fields[0]), "Hello");
        assert_eq!(doc.own_text(fields[1]), "world");
        assert_eq!(doc.xpath(fields[1]).to_string(), "/html[1]/body[1]/div[1]/b[1]");
    }

    #[test]
    fn xpath_indices_count_same_tag_siblings() {
        let doc = parse_html("<ul><li>a</li><li>b</li><span>x</span><li>c</li></ul>");
        let fields = doc.text_fields();
        let paths: Vec<String> = fields.iter().map(|&f| doc.xpath(f).to_string()).collect();
        assert_eq!(paths, vec!["/ul[1]/li[1]", "/ul[1]/li[2]", "/ul[1]/span[1]", "/ul[1]/li[3]"]);
    }

    #[test]
    fn void_elements_do_not_nest() {
        let doc = parse_html("<div>a<br>b<img src=\"x.png\">c</div>");
        doc.check_consistency().unwrap();
        assert_eq!(doc.own_text(doc.text_fields()[0]), "a b c");
    }

    #[test]
    fn unclosed_tags_are_tolerated() {
        let doc = parse_html("<div><p>one<p>two</div><span>after</span>");
        doc.check_consistency().unwrap();
        let texts: Vec<String> = doc.text_fields().iter().map(|&f| doc.own_text(f)).collect();
        assert!(texts.contains(&"after".to_string()));
    }

    #[test]
    fn stray_close_tags_ignored() {
        let doc = parse_html("</div></p><b>ok</b>");
        doc.check_consistency().unwrap();
        assert_eq!(doc.own_text(doc.text_fields()[0]), "ok");
    }

    #[test]
    fn script_and_style_are_skipped() {
        let doc = parse_html(
            "<script>var x = '<div>Spike Lee</div>';</script><style>b{}</style><b>real</b>",
        );
        let texts: Vec<String> = doc.text_fields().iter().map(|&f| doc.own_text(f)).collect();
        assert_eq!(texts, vec!["real".to_string()]);
    }

    #[test]
    fn attributes_parse_in_all_quote_styles() {
        let doc = parse_html(r#"<div id=main class="a b" data-x='y' hidden>t</div>"#);
        let n = doc.text_fields()[0];
        assert_eq!(doc.node(n).attr("id"), Some("main"));
        assert_eq!(doc.node(n).attr("class"), Some("a b"));
        assert_eq!(doc.node(n).attr("data-x"), Some("y"));
        assert_eq!(doc.node(n).attr("hidden"), Some(""));
    }

    #[test]
    fn entities_decode_in_text_and_attrs() {
        let doc = parse_html(r#"<div title="AT&amp;T">Tom &amp; Jerry&nbsp;Show</div>"#);
        let n = doc.text_fields()[0];
        assert_eq!(doc.own_text(n), "Tom & Jerry Show");
        assert_eq!(doc.node(n).attr("title"), Some("AT&T"));
    }

    #[test]
    fn comments_and_doctype_skipped() {
        let doc = parse_html("<!DOCTYPE html><!-- hidden <div>no</div> --><p>yes</p>");
        let texts: Vec<String> = doc.text_fields().iter().map(|&f| doc.own_text(f)).collect();
        assert_eq!(texts, vec!["yes".to_string()]);
    }

    #[test]
    fn stray_lt_is_text() {
        let doc = parse_html("<p>a < b</p>");
        assert_eq!(doc.own_text(doc.text_fields()[0]), "a < b");
    }

    #[test]
    fn serialize_reparse_is_stable() {
        let src = r#"<html><body><div class="x"><span itemprop="name">Do the Right Thing</span><ul><li>a</li><li>b</li></ul></div></body></html>"#;
        let doc = parse_html(src);
        let html = doc.to_html();
        let doc2 = parse_html(&html);
        assert_eq!(doc.to_html(), doc2.to_html());
        assert_eq!(doc.len(), doc2.len());
    }

    #[test]
    fn resolve_xpath_inverts_xpath() {
        let doc = parse_html("<html><body><div>a</div><div><b>x</b><b>y</b></div></body></html>");
        for field in doc.text_fields() {
            let path = doc.xpath(field);
            assert_eq!(doc.resolve_xpath(&path), Some(field), "path {path}");
        }
    }

    #[test]
    fn highest_exclusive_ancestor_stops_below_shared_section() {
        // Two mentions in one section, a third elsewhere.
        let doc = parse_html(
            "<html><body><div id=cast><span>Lee</span><span>Aiello</span></div><div id=other><span>Lee</span></div></body></html>",
        );
        let fields = doc.text_fields();
        let (lee_cast, aiello, lee_other) = (fields[0], fields[1], fields[2]);
        // From the cast mention of Lee, excluding the other Lee mention:
        // climbs to the cast div (its subtree has no other Lee mention) but
        // not to body.
        let anc = doc.highest_exclusive_ancestor(lee_cast, &[lee_other]);
        assert_eq!(doc.node(anc).attr("id"), Some("cast"));
        let _ = aiello;
    }

    #[test]
    fn relative_path_format() {
        let doc = parse_html("<div><span>label</span><ul><li>value</li></ul></div>");
        let fields = doc.text_fields();
        let (label, value) = (fields[0], fields[1]);
        // From the li up to div (2 levels), down into span.
        assert_eq!(doc.relative_path(value, label), "^2/span[1]");
        assert_eq!(doc.relative_path(label, value), "^1/ul[1]/li[1]");
        assert_eq!(doc.relative_path(value, value), "^0");
    }

    #[test]
    fn deep_text_collects_descendants() {
        let doc = parse_html("<div>a<span>b<i>c</i></span>d</div>");
        let root_div = doc.text_fields()[0];
        assert_eq!(doc.deep_text(root_div), "a b c d");
    }

    #[test]
    fn max_depth_counts_the_deepest_chain() {
        assert_eq!(parse_html("").max_depth(), 0);
        // <div> at 1, its text child at 2; the 30-deep spine wins over
        // the shallow sibling.
        assert_eq!(parse_html("<div>t</div>").max_depth(), 2);
        let deep = format!("{}bottom{}", "<div>".repeat(30), "</div>".repeat(30));
        let doc = parse_html(&format!("<p>shallow</p>{deep}"));
        assert_eq!(doc.max_depth(), 31); // 30 divs + the text node
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn parser_never_panics(s in ".*") {
            let doc = parse_html(&s);
            doc.check_consistency().unwrap();
        }

        #[test]
        fn parser_never_panics_on_taggy_input(
            s in "(<[a-z]{1,4}( [a-z]+=\"[a-z<>&]*\")?>|</[a-z]{1,4}>|[a-z &;]{0,6}){0,30}"
        ) {
            let doc = parse_html(&s);
            doc.check_consistency().unwrap();
        }

        #[test]
        fn serialize_reparse_fixpoint(
            s in "(<(div|p|b|ul|li)( class=\"[a-z]{1,5}\")?>|</(div|p|b|ul|li)>|[a-zA-Z ]{0,8}){0,40}"
        ) {
            let d1 = parse_html(&s);
            let h1 = d1.to_html();
            let d2 = parse_html(&h1);
            let h2 = d2.to_html();
            // After one serialize/parse cycle the representation is stable.
            prop_assert_eq!(h1, h2);
        }

        #[test]
        fn all_text_fields_resolve(
            s in "(<(div|span|ul|li)>|</(div|span|ul|li)>|[a-z]{0,4}){0,30}"
        ) {
            let doc = parse_html(&s);
            for f in doc.text_fields() {
                let p = doc.xpath(f);
                prop_assert_eq!(doc.resolve_xpath(&p), Some(f));
            }
        }

        #[test]
        fn max_depth_agrees_with_the_per_node_walk(
            s in "(<(div|span|ul|li)>|</(div|span|ul|li)>|[a-z]{0,4}){0,30}"
        ) {
            // The one-pass `max_depth` (the serve guards' depth check) must
            // equal the brute-force maximum of the ancestor-walk `depth`.
            let doc = parse_html(&s);
            let brute = doc.all_nodes().map(|n| doc.depth(n)).max().unwrap_or(0);
            prop_assert_eq!(doc.max_depth(), brute);
        }
    }
}
