//! # ceres-dom
//!
//! The DOM substrate for the CERES reproduction: a tolerant HTML parser, an
//! arena-backed DOM tree, absolute XPaths (paper §2.1: "a node in the tree
//! can be uniquely defined by an absolute XPath"), and the tree queries the
//! annotation and feature-extraction stages rely on:
//!
//! * *text fields* — element nodes carrying directly-owned text, the unit of
//!   annotation and extraction in CERES;
//! * ancestor chains and ancestor-sibling windows (structural features,
//!   §4.2);
//! * the "highest level node containing *mention* and no other element in
//!   *mentions*" query from Algorithm 2 (local evidence);
//! * relative tree paths between nodes (node-text features, §4.2).
//!
//! The parser is intentionally forgiving — real semi-structured websites are
//! full of unclosed tags — and is guaranteed (and property-tested) never to
//! panic on arbitrary input.

pub mod arena;
pub mod escape;
pub mod parse;
pub mod xpath;

pub use arena::{Document, Node, NodeId, NodeKind};
pub use escape::{escape_attr, escape_text};
pub use parse::parse_html;
pub use xpath::{Step, XPath};
