//! Unit tests for the DOM substrate: tolerant parsing of unclosed tags and
//! XPath round-trips through the arena.

use ceres_dom::{parse_html, XPath};

#[test]
fn unclosed_tags_still_yield_their_text() {
    // <li> and <p> are routinely left unclosed on real sites.
    let doc = parse_html("<ul><li>First<li>Second<li>Third</ul><p>after");
    let texts: Vec<String> = doc.text_fields().into_iter().map(|f| doc.own_text(f)).collect();
    for want in ["First", "Second", "Third", "after"] {
        assert!(texts.iter().any(|t| t == want), "text {want:?} lost; got {texts:?}");
    }
}

#[test]
fn unclosed_nested_blocks_keep_document_well_formed() {
    let doc = parse_html("<div><b>bold<div><i>italic</div>tail");
    // Every node's parent/children links must be mutually consistent.
    for id in doc.all_nodes() {
        if let Some(parent) = doc.node(id).parent {
            assert!(
                doc.node(parent).children.contains(&id),
                "node {id:?} missing from its parent's child list"
            );
        }
        for &child in &doc.node(id).children {
            assert_eq!(doc.node(child).parent, Some(id));
        }
    }
    let all: String =
        doc.text_fields().into_iter().map(|f| doc.own_text(f)).collect::<Vec<_>>().join(" ");
    assert!(all.contains("bold") && all.contains("italic") && all.contains("tail"));
}

#[test]
fn parser_tolerates_garbage_without_panicking() {
    for html in [
        "",
        "<",
        "<<<>>>",
        "</closes-nothing>",
        "<a href=>unterminated",
        "<div class=\"never closed",
        "text & <b>only</b> &amp; entities &#65;",
        "<DIV><Span>case</SPAN></div>",
    ] {
        let _ = parse_html(html); // must not panic
    }
}

#[test]
fn xpath_roundtrip_through_arena() {
    let doc = parse_html(
        "<html><body><div><span>a</span><span>b</span></div>\
         <div><ul><li>x</li><li>y</li><li>z</li></ul></div></body></html>",
    );
    // Every text field's absolute XPath must resolve back to the same node.
    let fields = doc.text_fields();
    assert!(!fields.is_empty());
    for f in fields {
        let path = doc.xpath(f);
        let resolved = doc.resolve_xpath(&path);
        assert_eq!(resolved, Some(f), "xpath {path} did not round-trip");
    }
}

#[test]
fn xpath_string_roundtrip() {
    let doc = parse_html("<html><body><div><ul><li>x</li><li>y</li></ul></div></body></html>");
    for f in doc.text_fields() {
        let path = doc.xpath(f);
        let reparsed: XPath = path.to_string().parse().expect("display form must parse");
        assert_eq!(
            doc.resolve_xpath(&reparsed),
            Some(f),
            "string round-trip broke resolution for {path}"
        );
    }
}

#[test]
fn sibling_indices_distinguish_repeated_tags() {
    let doc = parse_html("<body><div>one</div><div>two</div><div>three</div></body>");
    let fields = doc.text_fields();
    let paths: Vec<String> = fields.iter().map(|&f| doc.xpath(f).to_string()).collect();
    // All three divs must get distinct indexed paths.
    let unique: std::collections::BTreeSet<&String> = paths.iter().collect();
    assert_eq!(unique.len(), 3, "expected distinct paths, got {paths:?}");
}
