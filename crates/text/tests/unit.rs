//! Unit tests for the text substrate: normalization idempotence and
//! Levenshtein/Jaccard edge cases (empty strings, unicode, identical inputs).

use ceres_text::{jaccard, levenshtein, levenshtein_slices, normalize, token_sort_key, tokenize};

#[test]
fn normalize_is_idempotent_on_fixed_cases() {
    for s in [
        "",
        "   ",
        "Do the Right Thing",
        "  Spike   Lee ",
        "Amélie — ÉLÉGANT!",
        "Tab\tand\nnewline",
        "漢字タイトル 2001",
        "naïve CAFÉ déjà-vu",
        "🎬 The 🎬 Movie 🎬",
        "O'Brien, Conan (1963– )",
    ] {
        let once = normalize(s);
        let twice = normalize(&once);
        assert_eq!(once, twice, "normalize must be idempotent on {s:?}");
    }
}

#[test]
fn normalize_handles_empty_and_whitespace_only() {
    assert_eq!(normalize(""), "");
    assert_eq!(normalize(" \t\n "), "");
    assert_eq!(tokenize(&normalize(" \t ")).count(), 0);
}

#[test]
fn token_sort_key_is_order_insensitive() {
    assert_eq!(token_sort_key("Lee, Spike"), token_sort_key("Spike Lee"));
    assert_eq!(token_sort_key(""), token_sort_key("   "));
}

#[test]
fn levenshtein_empty_string_cases() {
    assert_eq!(levenshtein("", ""), 0);
    assert_eq!(levenshtein("", "abc"), 3);
    assert_eq!(levenshtein("abc", ""), 3);
}

#[test]
fn levenshtein_identical_inputs_are_zero() {
    for s in ["", "a", "abcdef", "é漢🎬", "/html[1]/body[1]/div[3]"] {
        assert_eq!(levenshtein(s, s), 0, "distance to self must be 0 for {s:?}");
    }
}

#[test]
fn levenshtein_counts_chars_not_bytes() {
    // One char substitution, several bytes apart in UTF-8 length.
    assert_eq!(levenshtein("café", "cafe"), 1);
    assert_eq!(levenshtein("漢", "字"), 1);
    assert_eq!(levenshtein("🎬a", "a"), 1);
}

#[test]
fn levenshtein_known_distances() {
    assert_eq!(levenshtein("kitten", "sitting"), 3);
    assert_eq!(levenshtein("flaw", "lawn"), 2);
    // Symmetry.
    assert_eq!(levenshtein("kitten", "sitting"), levenshtein("sitting", "kitten"));
}

#[test]
fn levenshtein_slices_matches_char_version() {
    let a: Vec<char> = "kitten".chars().collect();
    let b: Vec<char> = "sitting".chars().collect();
    assert_eq!(levenshtein_slices(&a, &b), levenshtein("kitten", "sitting"));
    assert_eq!(levenshtein_slices::<u32>(&[], &[]), 0);
    assert_eq!(levenshtein_slices(&[1, 2, 3], &[]), 3);
}

#[test]
fn jaccard_edge_cases() {
    // Both empty: defined as 0.0 (keeps empty entities out of contention).
    assert_eq!(jaccard::<u32>(&[], &[]), 0.0);
    // One empty.
    assert_eq!(jaccard(&[], &[1, 2, 3]), 0.0);
    // Identical inputs.
    assert_eq!(jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
    // Disjoint.
    assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
    // Partial overlap: |{2,3}| / |{1,2,3,4}|.
    assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
}
