//! Total-order float comparators for sorts and argmaxes.
//!
//! `f64::partial_cmp` is not a total order: any comparison involving NaN
//! returns `None`, so `partial_cmp().unwrap()` panics on the first poisoned
//! value and `partial_cmp().unwrap_or(Equal)` silently builds an
//! *intransitive* comparator (NaN compares `Equal` to everything while real
//! numbers still order among themselves), which `slice::sort_by` may detect
//! and panic on, or resolve into an unspecified — and therefore
//! nondeterministic-by-construction — order.
//!
//! These two comparators are the workspace-blessed replacements (enforced
//! by `ceres-lint` rule `CL005`). Both are total, both treat all NaNs as
//! one value, and both deliberately differ from [`f64::total_cmp`] in
//! keeping `-0.0 == 0.0`: several argmax sites tie-break equal
//! probabilities by field index, and `total_cmp`'s `-0.0 < 0.0` would flip
//! that tiebreak based on the sign of a zero.

use std::cmp::Ordering;

/// Total-order comparator that ranks NaN **below** every real number.
///
/// Use for "best wins" sites — argmaxes and descending sorts — where a
/// poisoned score must *lose*: `max_by(|a, b| nan_lowest(*a, *b))` never
/// selects a NaN while any real candidate exists.
#[inline]
pub fn nan_lowest(a: f64, b: f64) -> Ordering {
    // lint: allow(CL005) reason="this is the blessed definition site the rule points everyone at"
    a.partial_cmp(&b).unwrap_or_else(|| match (a.is_nan(), b.is_nan()) {
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        _ => Ordering::Equal,
    })
}

/// Total-order comparator that ranks NaN **above** every real number.
///
/// Use for "smallest wins" sites — ascending distance sorts and argmins —
/// where a poisoned distance must come *last*: sorting edges with
/// `sort_by(|a, b| nan_greatest(a.d, b.d))` pushes NaN edges to the end so
/// they are considered after every real edge (or never, when the consumer
/// stops early).
#[inline]
pub fn nan_greatest(a: f64, b: f64) -> Ordering {
    // lint: allow(CL005) reason="this is the blessed definition site the rule points everyone at"
    a.partial_cmp(&b).unwrap_or_else(|| match (a.is_nan(), b.is_nan()) {
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        _ => Ordering::Equal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_lowest_ranks_nan_below_reals() {
        assert_eq!(nan_lowest(f64::NAN, 0.0), Ordering::Less);
        assert_eq!(nan_lowest(0.0, f64::NAN), Ordering::Greater);
        assert_eq!(nan_lowest(f64::NAN, f64::NAN), Ordering::Equal);
        assert_eq!(nan_lowest(f64::NAN, f64::NEG_INFINITY), Ordering::Less);
        assert_eq!(nan_lowest(1.0, 2.0), Ordering::Less);
        assert_eq!(nan_lowest(-0.0, 0.0), Ordering::Equal); // unlike total_cmp
    }

    #[test]
    fn nan_greatest_ranks_nan_above_reals() {
        assert_eq!(nan_greatest(f64::NAN, 0.0), Ordering::Greater);
        assert_eq!(nan_greatest(0.0, f64::NAN), Ordering::Less);
        assert_eq!(nan_greatest(f64::NAN, f64::NAN), Ordering::Equal);
        assert_eq!(nan_greatest(f64::NAN, f64::INFINITY), Ordering::Greater);
        assert_eq!(nan_greatest(1.0, 2.0), Ordering::Less);
        assert_eq!(nan_greatest(-0.0, 0.0), Ordering::Equal);
    }

    /// Both comparators must be genuine total orders (transitive, total,
    /// antisymmetric) over a value set including NaN and signed zeros —
    /// the property `partial_cmp().unwrap_or(Equal)` lacks.
    #[test]
    fn comparators_are_total_orders() {
        let vals = [f64::NAN, f64::NEG_INFINITY, -1.0, -0.0, 0.0, 1.0, f64::INFINITY, f64::NAN];
        for cmp in [nan_lowest, nan_greatest] {
            for &a in &vals {
                for &b in &vals {
                    assert_eq!(cmp(a, b), cmp(b, a).reverse());
                    for &c in &vals {
                        if cmp(a, b) != Ordering::Greater && cmp(b, c) != Ordering::Greater {
                            assert_ne!(cmp(a, c), Ordering::Greater, "{a} {b} {c}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sorting_with_nans_is_deterministic_and_total() {
        let mut v = [2.0, f64::NAN, 1.0, f64::NAN, 0.5];
        v.sort_by(|a, b| nan_greatest(*a, *b));
        assert_eq!(&v[..3], &[0.5, 1.0, 2.0]);
        assert!(v[3].is_nan() && v[4].is_nan());
        let mut w = [2.0, f64::NAN, 1.0, f64::NAN, 0.5];
        w.sort_by(|a, b| nan_lowest(*a, *b));
        assert!(w[0].is_nan() && w[1].is_nan());
        assert_eq!(&w[2..], &[0.5, 1.0, 2.0]);
    }
}
