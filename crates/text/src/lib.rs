//! # ceres-text
//!
//! String utilities shared by every layer of the CERES reproduction:
//!
//! * [`normalize()`] / [`tokenize`] — the canonicalization applied before any
//!   string is compared against the knowledge base (the "fuzzy string
//!   matching" preprocessing of Gulhane et al. \[18\] as used in CERES §3.1).
//! * [`levenshtein`] / [`levenshtein_slices`] — edit distance between XPath
//!   strings (paper §3.2.2) and between XPath step sequences (ablation).
//! * [`jaccard`] — the set-similarity used by topic identification (Eq. 1).
//! * [`fold_unique`] — unique-string folding (dedupe a sequence into its
//!   distinct strings plus per-input slots); template sites repeat field
//!   strings across pages, so per-string work like KB matching is paid once
//!   per distinct string and fanned back out.
//! * [`FxHashMap`] / [`FxHashSet`] — hash containers with a fast,
//!   deterministic, non-cryptographic hash. CERES hashes millions of short
//!   strings (text fields, XPaths, feature names); SipHash is measurably
//!   slower and, more importantly for a reproduction, the std `RandomState`
//!   is *seeded per process*, which would make iteration order — and thus any
//!   code that accidentally depends on it — nondeterministic between runs.
//! * [`nan_lowest`] / [`nan_greatest`] — total-order float comparators for
//!   every score sort and argmax in the workspace (`partial_cmp().unwrap()`
//!   panics on NaN; `unwrap_or(Equal)` is intransitive — both are banned by
//!   `ceres-lint` rule CL005).

pub mod distance;
pub mod float;
pub mod fold;
pub mod hash;
pub mod normalize;

pub use distance::{jaccard, jaccard_counts, levenshtein, levenshtein_slices};
pub use float::{nan_greatest, nan_lowest};
pub use fold::{fold_unique, UniqueFold};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use normalize::{
    normalize, normalize_into, token_sort_key, token_sort_key_normalized, tokenize,
};
