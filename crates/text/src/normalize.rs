//! Text canonicalization applied before any page string is compared with the
//! knowledge base.
//!
//! CERES matches page text fields against KB value strings with a "fuzzy
//! string matching process" (paper §3.1.1, citing Gulhane et al. \[18\]).
//! The load-bearing part of that process is an aggressive normalization that
//! makes cosmetically different renderings of the same value collide:
//! case, punctuation, bracketed qualifiers, and whitespace are all erased.
//! On top of the canonical form, [`token_sort_key`] provides an
//! order-insensitive key ("Lee, Spike" vs "Spike Lee") used as a secondary
//! fuzzy index by `ceres-kb`.

/// Normalize a raw page string (or KB value string) into its canonical
/// matching form:
///
/// * Unicode lowercased,
/// * every non-alphanumeric character replaced by a single space,
/// * whitespace runs collapsed, leading/trailing whitespace removed.
///
/// The function is idempotent: `normalize(normalize(s)) == normalize(s)`
/// (verified by a property test).
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    normalize_into(s, &mut out);
    out
}

/// Allocation-reusing variant of [`normalize`]: clears `out` and writes the
/// canonical form into it. Hot paths (matching every text field on hundreds
/// of thousands of pages) keep one workhorse `String` alive per thread.
pub fn normalize_into(s: &str, out: &mut String) {
    out.clear();
    let mut pending_space = false;
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
        } else {
            pending_space = true;
        }
    }
}

/// Split a *normalized* string into its whitespace-delimited tokens.
pub fn tokenize(normalized: &str) -> impl Iterator<Item = &str> {
    normalized.split(' ').filter(|t| !t.is_empty())
}

/// Order-insensitive key for fuzzy matching: normalize, then sort tokens.
///
/// `token_sort_key("Lee, Spike") == token_sort_key("Spike Lee")`.
pub fn token_sort_key(s: &str) -> String {
    let norm = normalize(s);
    token_sort_key_normalized(&norm)
}

/// [`token_sort_key`] for input that is **already normalized** — the hot
/// matching path computes `normalize` once per text field and derives the
/// fuzzy key from the canonical form instead of re-normalizing the raw
/// string. `token_sort_key(s) == token_sort_key_normalized(&normalize(s))`
/// for every `s` (normalize is idempotent; property-tested below).
pub fn token_sort_key_normalized(norm: &str) -> String {
    let mut tokens: Vec<&str> = tokenize(norm).collect();
    tokens.sort_unstable();
    tokens.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_normalization() {
        assert_eq!(normalize("Do the Right Thing"), "do the right thing");
        assert_eq!(normalize("  Spike   Lee "), "spike lee");
        assert_eq!(normalize("ISBN-13: 978-0143127741"), "isbn 13 978 0143127741");
        assert_eq!(normalize("Do the Right Thing (1989)"), "do the right thing 1989");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("---"), "");
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(normalize("KVIKMYNDAVEFURINN"), "kvikmyndavefurinn");
        assert_eq!(normalize("Þórður"), "þórður");
        assert_eq!(normalize("ČESKÝ Film"), "český film");
    }

    #[test]
    fn token_sort_key_is_order_insensitive() {
        assert_eq!(token_sort_key("Lee, Spike"), token_sort_key("Spike Lee"));
        assert_eq!(token_sort_key("the right do thing"), token_sort_key("Do The Right Thing"));
        assert_ne!(token_sort_key("spike lee"), token_sort_key("spike jonze"));
    }

    #[test]
    fn tokenize_skips_empties() {
        let norm = normalize("a  b   c");
        let toks: Vec<&str> = tokenize(&norm).collect();
        assert_eq!(toks, vec!["a", "b", "c"]);
    }

    proptest! {
        #[test]
        fn normalize_is_idempotent(s in ".*") {
            let once = normalize(&s);
            let twice = normalize(&once);
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn normalize_has_no_double_spaces(s in ".*") {
            let n = normalize(&s);
            prop_assert!(!n.contains("  "));
            prop_assert!(!n.starts_with(' '));
            prop_assert!(!n.ends_with(' '));
        }

        #[test]
        fn normalize_into_matches_normalize(s in ".*") {
            let mut buf = String::from("stale contents");
            normalize_into(&s, &mut buf);
            prop_assert_eq!(buf, normalize(&s));
        }

        #[test]
        fn token_sort_key_normalized_matches_raw_path(s in ".*") {
            prop_assert_eq!(token_sort_key(&s), token_sort_key_normalized(&normalize(&s)));
        }

        #[test]
        fn token_sort_key_idempotent_under_shuffle(
            mut tokens in proptest::collection::vec("[a-z]{1,6}", 1..6)
        ) {
            let joined = tokens.join(" ");
            tokens.reverse();
            let reversed = tokens.join(" ");
            prop_assert_eq!(token_sort_key(&joined), token_sort_key(&reversed));
        }
    }
}
