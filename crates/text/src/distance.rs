//! Edit-distance and set-similarity primitives.
//!
//! * [`levenshtein`] over `char`s backs the XPath-distance used by the
//!   relation-annotation clustering step (paper §3.2.2: "The distance
//!   function between two DOM nodes is defined as the Levenshtein distance
//!   between their corresponding XPaths").
//! * [`levenshtein_slices`] is the generic sequence form, used for the
//!   step-level XPath distance ablation.
//! * [`jaccard`] implements Eq. 1 of the paper (topic scoring).

/// Levenshtein (edit) distance between two strings, computed over Unicode
/// scalar values with the classic two-row dynamic program: `O(|a|·|b|)` time,
/// `O(min(|a|,|b|))` space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    // Fast paths: equality and empty inputs.
    if a == b {
        return 0;
    }
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    levenshtein_slices(&a_chars, &b_chars)
}

/// Levenshtein distance between two sequences of comparable items.
pub fn levenshtein_slices<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Keep the inner loop over the shorter sequence to minimize the row.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };

    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr: Vec<usize> = vec![0; short.len() + 1];

    for (i, litem) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, sitem) in short.iter().enumerate() {
            let cost = usize::from(litem != sitem);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Jaccard similarity |A ∩ B| / |A ∪ B| between two **sorted, deduplicated**
/// slices. Returns 0.0 when both are empty (the paper's score is undefined
/// there; 0 keeps such entities out of topic contention).
pub fn jaccard<T: Ord>(a: &[T], b: &[T]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "input a must be sorted+dedup");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "input b must be sorted+dedup");
    let (inter, union) = jaccard_counts(a, b);
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Intersection and union sizes of two sorted, deduplicated slices
/// (merge-based, `O(|a|+|b|)`).
pub fn jaccard_counts<T: Ord>(a: &[T], b: &[T]) -> (usize, usize) {
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    (inter, union)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn levenshtein_on_xpath_like_strings() {
        // The Figure-2 example: two XPaths differing at two node indices.
        let p1 = "/html[1]/body[1]/div[3]/div[2]/div[2]/div[4]/div[2]/b[1]";
        let p2 = "/html[1]/body[1]/div[3]/div[2]/div[2]/div[3]/div[1]/b[1]";
        assert_eq!(levenshtein(p1, p2), 2);
    }

    #[test]
    fn levenshtein_slices_generic() {
        assert_eq!(levenshtein_slices(&[1, 2, 3], &[1, 3]), 1);
        assert_eq!(levenshtein_slices::<u8>(&[], &[]), 0);
        assert_eq!(levenshtein_slices(&["div", "span"], &["div", "b"]), 1);
    }

    #[test]
    fn jaccard_known_values() {
        assert_eq!(jaccard(&[1, 2, 3], &[2, 3, 4]), 0.5);
        assert_eq!(jaccard(&[1], &[1]), 1.0);
        assert_eq!(jaccard(&[1], &[2]), 0.0);
        assert_eq!(jaccard::<u32>(&[], &[]), 0.0);
    }

    #[test]
    fn jaccard_counts_disjoint_and_subset() {
        assert_eq!(jaccard_counts(&[1, 2], &[3, 4]), (0, 4));
        assert_eq!(jaccard_counts(&[1, 2], &[1, 2, 3]), (2, 3));
    }

    proptest! {
        #[test]
        fn levenshtein_symmetry(a in "[a-d]{0,16}", b in "[a-d]{0,16}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn levenshtein_identity(a in ".{0,24}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
        }

        #[test]
        fn levenshtein_triangle_inequality(
            a in "[a-c]{0,10}", b in "[a-c]{0,10}", c in "[a-c]{0,10}"
        ) {
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn levenshtein_bounded_by_longer(a in "[a-z]{0,16}", b in "[a-z]{0,16}") {
            let d = levenshtein(&a, &b);
            let la = a.chars().count();
            let lb = b.chars().count();
            prop_assert!(d <= la.max(lb));
            prop_assert!(d >= la.abs_diff(lb));
        }

        #[test]
        fn jaccard_in_unit_interval(
            a in proptest::collection::btree_set(0u32..64, 0..16),
            b in proptest::collection::btree_set(0u32..64, 0..16),
        ) {
            let av: Vec<u32> = a.into_iter().collect();
            let bv: Vec<u32> = b.into_iter().collect();
            let j = jaccard(&av, &bv);
            prop_assert!((0.0..=1.0).contains(&j));
            // Symmetry
            prop_assert_eq!(j, jaccard(&bv, &av));
        }
    }
}
