//! A deterministic, fast, non-cryptographic hasher (the `FxHash` algorithm
//! used by rustc), plus `HashMap`/`HashSet` aliases built on it.
//!
//! CERES is a batch pipeline over untrusted-but-local data; HashDoS is not a
//! concern, while speed on short string keys (XPaths, feature names,
//! normalized text fields) and run-to-run determinism are.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash algorithm (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: a single 64-bit accumulator.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s; zero-sized and deterministic.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the deterministic FxHash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the deterministic FxHash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(hash_of(&12345u64), hash_of(&12345u64));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(hash_of(&"hello"), hash_of(&"world"));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(format!("key-{i}"), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&format!("key-{i}")), Some(&i));
        }
    }

    #[test]
    fn handles_all_byte_lengths() {
        // Exercise the 8/4/1-byte tails of `write`.
        for len in 0..32 {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h1 = FxHasher::default();
            let mut h2 = FxHasher::default();
            h1.write(&bytes);
            h2.write(&bytes);
            assert_eq!(h1.finish(), h2.finish());
        }
    }
}
