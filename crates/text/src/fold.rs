//! Unique-string folding: dedupe a sequence of strings into its distinct
//! values plus a per-input slot.
//!
//! Semi-structured template sites repeat the same field strings across
//! pages ("Director", "Genre", boilerplate navigation, shared values), so
//! any per-string work — KB matching above all — can be paid once per
//! *distinct* string and fanned back out. This is the string analogue of
//! the duplicate-row folding the trainer applies to feature vectors.

use crate::FxHashMap;

/// The result of [`fold_unique`]: `uniq` holds each distinct string once,
/// in **first-occurrence order** (deterministic — the fold map is probed,
/// never iterated), and `slots[i]` is the index into `uniq` for input `i`.
#[derive(Debug)]
pub struct UniqueFold<'a> {
    /// Distinct input strings, first occurrence first.
    pub uniq: Vec<&'a str>,
    /// `slots[i]` indexes `uniq` for input `i`; `slots.len()` equals the
    /// input length.
    pub slots: Vec<u32>,
}

impl UniqueFold<'_> {
    /// Inputs per distinct string (≥ 1.0; 1.0 means no duplicates).
    pub fn fold_ratio(&self) -> f64 {
        if self.uniq.is_empty() {
            return 1.0;
        }
        self.slots.len() as f64 / self.uniq.len() as f64
    }
}

/// Fold `items` down to its distinct strings. O(total input length);
/// the returned borrows tie to `items`, so callers fold, look up once per
/// unique string, then scatter through `slots`.
pub fn fold_unique<S: AsRef<str>>(items: &[S]) -> UniqueFold<'_> {
    let mut uniq: Vec<&str> = Vec::new();
    let mut slots: Vec<u32> = Vec::with_capacity(items.len());
    let mut slot_of: FxHashMap<&str, u32> = FxHashMap::default();
    for item in items {
        let s = item.as_ref();
        let slot = *slot_of.entry(s).or_insert_with(|| {
            uniq.push(s);
            (uniq.len() - 1) as u32
        });
        slots.push(slot);
    }
    UniqueFold { uniq, slots }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn folds_in_first_occurrence_order() {
        let items = ["b", "a", "b", "c", "a"];
        let fold = fold_unique(&items);
        assert_eq!(fold.uniq, vec!["b", "a", "c"]);
        assert_eq!(fold.slots, vec![0, 1, 0, 2, 1]);
        assert!((fold.fold_ratio() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_folds_empty() {
        let fold = fold_unique::<&str>(&[]);
        assert!(fold.uniq.is_empty());
        assert!(fold.slots.is_empty());
        assert_eq!(fold.fold_ratio(), 1.0);
    }

    proptest! {
        /// Scattering `uniq` through `slots` reconstructs the input.
        #[test]
        fn scatter_reconstructs_input(items in proptest::collection::vec("[a-c]{0,3}", 0..40)) {
            let fold = fold_unique(&items);
            let rebuilt: Vec<&str> = fold.slots.iter().map(|&s| fold.uniq[s as usize]).collect();
            let expect: Vec<&str> = items.iter().map(|s| s.as_str()).collect();
            prop_assert_eq!(rebuilt, expect);
            // uniq really is a set.
            let mut sorted = fold.uniq.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), fold.uniq.len());
        }
    }
}
