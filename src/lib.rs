//! # CERES — distantly supervised relation extraction from the semi-structured web
//!
//! A from-scratch Rust reproduction of *CERES: Distantly Supervised Relation
//! Extraction from the Semi-Structured Web* (Lockard, Dong, Einolghozati,
//! Shiralkar; VLDB 2018). This umbrella crate re-exports the workspace's
//! public API:
//!
//! * [`text`] — normalization, Levenshtein, Jaccard, fast hashing;
//! * [`dom`] — tolerant HTML parsing, arena DOM, absolute XPaths;
//! * [`kb`] — ontology, triple store, fuzzy entity matching;
//! * [`ml`] — sparse features, softmax regression + L-BFGS, agglomerative
//!   clustering;
//! * [`runtime`] — the deterministic parallel executor every stage fans
//!   out on (`CERES_THREADS`; byte-identical output at any thread count);
//! * [`synth`] — the synthetic semi-structured web (SWDE-like, IMDb-like,
//!   CommonCrawl-like corpora) standing in for the paper's proprietary data;
//! * [`core`] — the CERES pipeline (Algorithms 1 & 2, training, extraction)
//!   and the baselines (CERES-TOPIC, CERES-BASELINE, VERTEX++);
//! * [`eval`] — gold-standard scoring and the per-table/figure experiment
//!   runners;
//! * [`fusion`] — knowledge fusion + entity linkage over extraction results
//!   (the post-processing the paper defers to Knowledge Vault / big-data
//!   integration).
//!
//! ## Quickstart
//!
//! ```
//! use ceres::prelude::*;
//!
//! // A seed KB with a handful of film facts…
//! let mut onto = Ontology::new();
//! let film = onto.register_type("Film");
//! let person = onto.register_type("Person");
//! let directed = onto.register_pred("directedBy", film, true);
//! let cast = onto.register_pred("cast", film, true);
//! let mut kb = KbBuilder::new(onto);
//! for i in 0..8 {
//!     let f = kb.entity(film, &format!("Movie Number {i}"));
//!     let d = kb.entity(person, &format!("Director Number {i}"));
//!     kb.triple(f, directed, d);
//!     for j in 0..3 {
//!         let a = kb.entity(person, &format!("Star {i} {j}"));
//!         kb.triple(f, cast, a);
//!     }
//! }
//! let kb = kb.build();
//!
//! // …and a templated website asserting those facts (plus unknown films).
//! let pages: Vec<(String, String)> = (0..12)
//!     .map(|i| {
//!         (format!("page-{i}"), format!(
//!             "<html><body><h1>Movie Number {i}</h1>\
//!              <div class=info><span class=l>Director:</span>\
//!              <span class=v>Director Number {i}</span></div>\
//!              <ul class=cast><li>Star {i} 0</li><li>Star {i} 1</li>\
//!              <li>Star {i} 2</li></ul>\
//!              <div class=f><span>a</span><span>b</span><span>c</span>\
//!              <span>d</span><span>e</span><span>f</span></div></body></html>"
//!         ))
//!     })
//!     .collect();
//!
//! let cfg = CeresConfig::new(42);
//! let run = run_site(&kb, &pages, None, &cfg, AnnotationMode::Full);
//! assert!(run.stats.trained);
//! // Films 8..11 are not in the KB, yet their facts are extracted.
//! assert!(run.extractions.iter().any(|e| e.page_id == "page-10"));
//! ```
//!
//! `run_site` is the batch wrapper over the streaming session API —
//! ingest pages as they arrive, train once, then extract from new pages
//! forever without re-training:
//!
//! ```
//! # use ceres::prelude::*;
//! # let mut onto = Ontology::new();
//! # let film = onto.register_type("Film");
//! # let person = onto.register_type("Person");
//! # let directed = onto.register_pred("directedBy", film, true);
//! # let cast = onto.register_pred("cast", film, true);
//! # let mut kb = KbBuilder::new(onto);
//! # for i in 0..8 {
//! #     let f = kb.entity(film, &format!("Movie Number {i}"));
//! #     let d = kb.entity(person, &format!("Director Number {i}"));
//! #     kb.triple(f, directed, d);
//! #     for j in 0..3 {
//! #         let a = kb.entity(person, &format!("Star {i} {j}"));
//! #         kb.triple(f, cast, a);
//! #     }
//! # }
//! # let kb = kb.build();
//! # let html_of = |i: usize| format!(
//! #     "<html><body><h1>Movie Number {i}</h1>\
//! #      <div class=info><span class=l>Director:</span>\
//! #      <span class=v>Director Number {i}</span></div>\
//! #      <ul class=cast><li>Star {i} 0</li><li>Star {i} 1</li>\
//! #      <li>Star {i} 2</li></ul>\
//! #      <div class=f><span>a</span><span>b</span><span>c</span>\
//! #      <span>d</span><span>e</span><span>f</span></div></body></html>");
//! let mut session = SiteSession::builder(&kb).config(CeresConfig::new(42)).build();
//! for i in 0..12 {
//!     session.push_page(format!("page-{i}"), html_of(i)); // parse overlaps ingest
//! }
//! let trained = session.finish_training(); // freeze models + template signatures
//! assert!(trained.stats().trained);
//! // Serve: thread-safe (&self), works on pages never seen at train time.
//! let late = trained.extract_page("page-99", &html_of(99));
//! assert!(late.iter().any(|e| e.object == "Director Number 99"));
//! ```

pub use ceres_core as core;
pub use ceres_dom as dom;
pub use ceres_eval as eval;
pub use ceres_fusion as fusion;
pub use ceres_kb as kb;
pub use ceres_ml as ml;
pub use ceres_runtime as runtime;
pub use ceres_store as store;
pub use ceres_synth as synth;
pub use ceres_text as text;

/// The most common imports, bundled.
pub mod prelude {
    pub use ceres_core::baseline::{run_baseline, BaselineConfig};
    pub use ceres_core::extract::{ExtractLabel, Extraction};
    pub use ceres_core::pipeline::{run_site, AnnotationMode, SiteRun};
    pub use ceres_core::session::{SiteSession, SiteSessionBuilder, TrainedSite};
    pub use ceres_core::vertex::{apply_rules, learn_rules, LabeledPage};
    pub use ceres_core::CeresConfig;
    pub use ceres_dom::{parse_html, Document, XPath};
    pub use ceres_kb::{Kb, KbBuilder, Ontology, PredId, ValueId};
    pub use ceres_ml::{LogReg, TrainConfig};
    pub use ceres_runtime::{Runtime, StreamMap};
    pub use ceres_synth::{GoldFact, Page, PageGold, Site};
}

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_resolve() {
        let _ = crate::prelude::CeresConfig::new(1);
        let doc = crate::dom::parse_html("<b>x</b>");
        assert_eq!(doc.text_fields().len(), 1);
    }
}
