//! Knowledge fusion demo: harvest several long-tail sites, fuse the
//! extractions into ranked facts, and link them back to the seed KB —
//! the post-extraction steps the paper defers to Knowledge Vault [10, 11]
//! and big-data integration [13].
//!
//! ```text
//! cargo run --release --example fusion_harvest [scale]
//! ```

use ceres::eval::experiments::ExpConfig;
use ceres::eval::harness::{run_ceres_on_site, EvalProtocol, SystemKind};
use ceres::fusion::{fuse, link, FusionConfig, Linkage, SourcedExtraction};
use ceres::prelude::CeresConfig;
use ceres::runtime::Runtime;
use ceres::synth::commoncrawl::{cc_site_specs, generate_cc_site};
use ceres::synth::movie_world::{KbBias, MovieWorld, MovieWorldConfig};

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let e = ExpConfig { seed: 42, scale, threads: None };

    let world = MovieWorld::generate(MovieWorldConfig {
        seed: e.seed ^ 0xCC,
        n_people: 4000,
        n_films: 2000,
        n_series: 10,
        title_collision_share: 0.025,
    });
    let kb = world.build_kb(&KbBias::default()).kb;

    let chosen = ["themoviedb.org", "britflicks.com", "danksefilm.com", "kinobox.cz"];
    let specs: Vec<_> = cc_site_specs().into_iter().filter(|s| chosen.contains(&s.name)).collect();
    eprintln!("harvesting {} overlapping sites at scale {scale}…", specs.len());

    // Site-level fan-out happens in the loop below; the inner pipeline
    // stays sequential so N sites don't each spawn M more workers.
    let cfg = CeresConfig::new(e.seed).with_threads(1);
    let rt = Runtime::with_threads(e.threads);
    let per_site = rt.par_map(&specs, |spec| {
        let site = generate_cc_site(&world, spec, e.seed, e.scale);
        let run =
            run_ceres_on_site(&kb, &site, EvalProtocol::WholeSite, &cfg, SystemKind::CeresFull);
        (spec.name.to_string(), run.extractions)
    });

    let mut sourced = Vec::new();
    for (site, extractions) in per_site {
        for extraction in extractions {
            sourced.push(SourcedExtraction { site: site.clone(), extraction });
        }
    }
    println!("{} raw extractions from {} sites", sourced.len(), chosen.len());

    let fused =
        fuse(&sourced, |p| kb.ontology().pred_name(p).to_string(), &FusionConfig::default());
    let multi_site = fused.iter().filter(|f| f.sites >= 2).count();
    println!("{} fused facts; {} corroborated by ≥2 sites", fused.len(), multi_site);

    println!("\nTop fused facts (belief | sites | subject | predicate | object):");
    for f in fused.iter().filter(|f| f.sites >= 2).take(12) {
        println!(
            "  {:.3} | {} | {:28} | {:28} | {}",
            f.belief, f.sites, f.subject, f.pred, f.object_surface
        );
    }

    let linked = link(&kb, &fused);
    let (mut hits, mut ambiguous, mut new) = (0usize, 0usize, 0usize);
    for l in &linked {
        match l.subject {
            Linkage::Linked(_) => hits += 1,
            Linkage::Ambiguous(_) => ambiguous += 1,
            Linkage::NewEntity => new += 1,
        }
    }
    println!(
        "\nSubject linkage: {hits} linked to the seed KB, {ambiguous} ambiguous, \
         {new} new entities discovered by extraction."
    );
}
