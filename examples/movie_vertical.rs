//! SWDE-style vertical evaluation (paper §5.3) as a runnable example:
//! generate the Movie vertical, run CERES-FULL and VERTEX++ per site with
//! the 50/50 split protocol, and print page-hit F1 per site.
//!
//! ```text
//! cargo run --release --example movie_vertical [scale]
//! ```

use ceres::eval::experiments::{render_table, ExpConfig};
use ceres::eval::harness::{
    eval_page_ids, run_ceres_on_site, run_vertex_on_site, EvalProtocol, SystemKind,
};
use ceres::eval::metrics::{GoldIndex, PageHitScorer};
use ceres::prelude::CeresConfig;
use ceres::runtime::Runtime;
use ceres::synth::swde::{movie_vertical, SwdeConfig};

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let e = ExpConfig { seed: 42, scale, threads: None };
    eprintln!("generating the SWDE-like Movie vertical at scale {scale}…");
    let (v, _world) = movie_vertical(SwdeConfig { seed: e.seed, scale: e.scale });
    println!(
        "KB: {} triples; attributes: {:?}\n",
        v.kb.n_triples(),
        v.attributes.iter().map(|(d, _)| *d).collect::<Vec<_>>()
    );

    // CERES cannot extract MPAA ratings (no seed triples) — footnote a.
    let ceres_attrs: Vec<&str> =
        v.attributes.iter().map(|(_, p)| *p).filter(|p| !p.contains("mpaa")).collect();
    let vertex_attrs: Vec<&str> = v.attributes.iter().map(|(_, p)| *p).collect();

    // Site-level fan-out happens in the loop below; the inner pipeline
    // stays sequential so N sites don't each spawn M more workers.
    let cfg = CeresConfig::new(e.seed).with_threads(1);
    let rt = Runtime::with_threads(e.threads);
    let rows: Vec<Vec<String>> = rt.par_map(&v.sites, |site| {
        let gold = GoldIndex::new(site);
        let ids = eval_page_ids(site, EvalProtocol::SplitHalves);
        let full =
            run_ceres_on_site(&v.kb, site, EvalProtocol::SplitHalves, &cfg, SystemKind::CeresFull);
        let vx = run_vertex_on_site(&v.kb, site, EvalProtocol::SplitHalves, 2, Some(1));
        let f_full = PageHitScorer::score(&v.kb, &gold, &ids, &full.extractions, &ceres_attrs)
            .mean_f1(&ceres_attrs);
        let f_vx = PageHitScorer::score(&v.kb, &gold, &ids, &vx.extractions, &vertex_attrs)
            .mean_f1(&vertex_attrs);
        vec![
            site.name.clone(),
            site.pages.len().to_string(),
            full.stats.n_annotated_pages.to_string(),
            format!("{f_full:.2}"),
            format!("{f_vx:.2}"),
        ]
    });
    println!(
        "{}",
        render_table(&["Site", "#Pages", "#AnnPages", "CERES-Full F1", "Vertex++ F1"], &rows)
    );
    let mean = |col: usize| {
        rows.iter().filter_map(|r| r[col].parse::<f64>().ok()).sum::<f64>() / rows.len() as f64
    };
    println!("mean CERES-Full F1 = {:.2} (paper: 0.99)", mean(3));
    println!("mean Vertex++  F1 = {:.2} (paper: 0.90)", mean(4));
}
