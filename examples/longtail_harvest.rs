//! Long-tail harvesting (paper §5.5) as a runnable example: build a few of
//! the CommonCrawl-like sites, harvest them with CERES-FULL, and show the
//! precision/volume trade-off as the confidence threshold moves — the
//! mechanism behind Figure 6's "1.25M extractions at 90% precision".
//!
//! ```text
//! cargo run --release --example longtail_harvest [scale]
//! ```

use ceres::eval::experiments::{render_table, ExpConfig};
use ceres::eval::harness::{run_ceres_on_site, EvalProtocol, SystemKind};
use ceres::eval::metrics::GoldIndex;
use ceres::prelude::CeresConfig;
use ceres::runtime::Runtime;
use ceres::synth::commoncrawl::{cc_site_specs, generate_cc_site};
use ceres::synth::movie_world::{KbBias, MovieWorld, MovieWorldConfig};

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let e = ExpConfig { seed: 42, scale, threads: None };

    // A world shared by a handful of contrasting long-tail sites.
    let world = MovieWorld::generate(MovieWorldConfig {
        seed: e.seed ^ 0xCC,
        n_people: 6000,
        n_films: 3000,
        n_series: 12,
        title_collision_share: 0.025,
    });
    let kb = world.build_kb(&KbBias::default()).kb;

    let chosen = [
        "danksefilm.com",
        "kinobox.cz",
        "the-numbers.com",
        "christianfilmdatabase.com",
        "kvikmyndavefurinn.is",
    ];
    let specs: Vec<_> = cc_site_specs().into_iter().filter(|s| chosen.contains(&s.name)).collect();
    eprintln!("harvesting {} sites at scale {scale}…", specs.len());

    // Site-level fan-out happens in the loop below; the inner pipeline
    // stays sequential so N sites don't each spawn M more workers.
    let cfg = CeresConfig::new(e.seed).with_threads(1);
    let rt = Runtime::with_threads(e.threads);
    let results = rt.par_map(&specs, |spec| {
        let site = generate_cc_site(&world, spec, e.seed, e.scale);
        let run =
            run_ceres_on_site(&kb, &site, EvalProtocol::WholeSite, &cfg, SystemKind::CeresFull);
        let gold = GoldIndex::new(&site);
        let scored: Vec<(f64, bool)> = run
            .extractions
            .iter()
            .map(|x| (x.confidence, gold.extraction_correct(&kb, x)))
            .collect();
        (spec.name.to_string(), site.pages.len(), run.stats.n_annotations, scored)
    });

    let mut rows = Vec::new();
    let mut all: Vec<(f64, bool)> = Vec::new();
    for (name, pages, anns, scored) in &results {
        let n = scored.len();
        let p = if n == 0 {
            0.0
        } else {
            scored.iter().filter(|(_, ok)| *ok).count() as f64 / n as f64
        };
        rows.push(vec![
            name.clone(),
            pages.to_string(),
            anns.to_string(),
            n.to_string(),
            format!("{p:.2}"),
        ]);
        all.extend_from_slice(scored);
    }
    println!(
        "{}",
        render_table(&["Site", "#Pages", "#Annotations", "#Extractions", "Precision@0.5"], &rows)
    );

    println!("Precision/volume trade-off across the harvested sites:");
    for t in [0.5, 0.6, 0.7, 0.75, 0.8, 0.9] {
        let kept: Vec<&(f64, bool)> = all.iter().filter(|(c, _)| *c >= t).collect();
        let n = kept.len();
        let p =
            if n == 0 { 0.0 } else { kept.iter().filter(|(_, ok)| *ok).count() as f64 / n as f64 };
        println!("  threshold {t:.2}: {n:6} extractions at precision {p:.3}");
    }
}
