//! Quickstart: run CERES end-to-end on a handmade ten-page website.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the core promise of the paper: seed the extractor with a
//! *partial* knowledge base, let it annotate and train itself, and harvest
//! facts about entities the KB has never heard of.

use ceres::prelude::*;

fn main() {
    // --- 1. A seed KB knowing 8 of the site's 14 films ---
    let mut onto = Ontology::new();
    let film = onto.register_type("Film");
    let person = onto.register_type("Person");
    let directed = onto.register_pred("directedBy", film, true);
    let genre_p = onto.register_pred("genre", film, true);

    let cast_p = onto.register_pred("cast", film, true);
    let mut kb = KbBuilder::new(onto);
    let genres = ["Drama", "Comedy", "Action"];
    for i in 0..8 {
        let f = kb.entity(film, &format!("Movie Number {i}"));
        let d = kb.entity(person, &format!("Director Number {i}"));
        kb.triple(f, directed, d);
        let g = kb.literal(genres[i % 3]);
        kb.triple(f, genre_p, g);
        for j in 0..3 {
            let a = kb.entity(person, &format!("Star {i} {j}"));
            kb.triple(f, cast_p, a);
        }
    }
    let kb = kb.build();
    println!("Seed KB: {} triples over {} values", kb.n_triples(), kb.n_values());

    // --- 2. A templated website: 14 film pages, 6 beyond the KB ---
    let pages: Vec<(String, String)> = (0..14)
        .map(|i| {
            let g = genres[i % 3];
            (
                format!("page-{i}"),
                format!(
                    "<html><body><div class=nav><a>Home</a><a>Help</a></div>\
                     <h1 class=title>Movie Number {i}</h1>\
                     <div class=info>\
                     <div class=row><span class=label>Director:</span>\
                     <span class=val>Director Number {i}</span></div>\
                     <div class=row><span class=label>Genre:</span>\
                     <span class=val>{g}</span></div>\
                     </div>\
                     <div class=cast><h2>Cast</h2><ul>\
                     <li>Star {i} 0</li><li>Star {i} 1</li><li>Star {i} 2</li>\
                     </ul></div>\
                     <div class=footer><span>terms</span><span>privacy</span>\
                     <span>contact</span></div></body></html>"
                ),
            )
        })
        .collect();

    // --- 3. Annotate, train, extract ---
    let cfg = CeresConfig::new(42);
    let run = run_site(&kb, &pages, None, &cfg, AnnotationMode::Full);
    println!(
        "Annotated {} pages ({} annotations), trained on {} examples, {} features",
        run.stats.n_annotated_pages,
        run.stats.n_annotations,
        run.stats.n_train_examples,
        run.stats.n_features,
    );

    println!("\nExtractions (subject | predicate | object | confidence):");
    let mut shown = 0;
    for e in &run.extractions {
        let pred = match &e.label {
            ExtractLabel::Name => "name".to_string(),
            ExtractLabel::Pred(p) => kb.ontology().pred_name(*p).to_string(),
        };
        println!("  {:22} | {:10} | {:20} | {:.2}", e.subject, pred, e.object, e.confidence);
        shown += 1;
    }
    let beyond_kb = run
        .extractions
        .iter()
        .filter(|e| {
            e.page_id.trim_start_matches("page-").parse::<usize>().map(|i| i >= 8).unwrap_or(false)
        })
        .count();
    println!("\n{shown} extractions total; {beyond_kb} from films the seed KB does not contain.");
    assert!(beyond_kb > 0, "expected long-tail extractions");
}
