//! Quickstart: run CERES end-to-end on a handmade fourteen-page website
//! through the streaming session API (ingest → train → serve).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the core promise of the paper: seed the extractor with a
//! *partial* knowledge base, let it annotate and train itself, and harvest
//! facts about entities the KB has never heard of — including from a page
//! that arrives only *after* training is frozen.

use ceres::prelude::*;

fn main() {
    // --- 1. A seed KB knowing 8 of the site's 14 films ---
    let mut onto = Ontology::new();
    let film = onto.register_type("Film");
    let person = onto.register_type("Person");
    let directed = onto.register_pred("directedBy", film, true);
    let genre_p = onto.register_pred("genre", film, true);

    let cast_p = onto.register_pred("cast", film, true);
    let mut kb = KbBuilder::new(onto);
    let genres = ["Drama", "Comedy", "Action"];
    for i in 0..8 {
        let f = kb.entity(film, &format!("Movie Number {i}"));
        let d = kb.entity(person, &format!("Director Number {i}"));
        kb.triple(f, directed, d);
        let g = kb.literal(genres[i % 3]);
        kb.triple(f, genre_p, g);
        for j in 0..3 {
            let a = kb.entity(person, &format!("Star {i} {j}"));
            kb.triple(f, cast_p, a);
        }
    }
    let kb = kb.build();
    println!("Seed KB: {} triples over {} values", kb.n_triples(), kb.n_values());

    // --- 2. A templated website: 14 film pages, 6 beyond the KB ---
    let pages: Vec<(String, String)> = (0..14)
        .map(|i| {
            let g = genres[i % 3];
            (
                format!("page-{i}"),
                format!(
                    "<html><body><div class=nav><a>Home</a><a>Help</a></div>\
                     <h1 class=title>Movie Number {i}</h1>\
                     <div class=info>\
                     <div class=row><span class=label>Director:</span>\
                     <span class=val>Director Number {i}</span></div>\
                     <div class=row><span class=label>Genre:</span>\
                     <span class=val>{g}</span></div>\
                     </div>\
                     <div class=cast><h2>Cast</h2><ul>\
                     <li>Star {i} 0</li><li>Star {i} 1</li><li>Star {i} 2</li>\
                     </ul></div>\
                     <div class=footer><span>terms</span><span>privacy</span>\
                     <span>contact</span></div></body></html>"
                ),
            )
        })
        .collect();

    // --- 3. Ingest: stream pages into a session (parsing overlaps the
    //        producer loop via the runtime's bounded reorder buffer) ---
    let mut session = SiteSession::builder(&kb).config(CeresConfig::new(42)).build();
    session.ingest(pages);

    // --- 4. Train once: freeze per-cluster models + template signatures ---
    let trained = session.finish_training();
    println!(
        "Annotated {} pages ({} annotations), trained on {} examples, {} features",
        trained.stats().n_annotated_pages,
        trained.stats().n_annotations,
        trained.stats().n_train_examples,
        trained.stats().n_features,
    );

    // --- 5. Serve: extract from the site's own pages... ---
    let extractions = trained.extract_training_pages();
    println!("\nExtractions (subject | predicate | object | confidence):");
    let mut shown = 0;
    for e in &extractions {
        let pred = match &e.label {
            ExtractLabel::Name => "name".to_string(),
            ExtractLabel::Pred(p) => kb.ontology().pred_name(*p).to_string(),
        };
        println!("  {:22} | {:10} | {:20} | {:.2}", e.subject, pred, e.object, e.confidence);
        shown += 1;
    }
    let beyond_kb = extractions
        .iter()
        .filter(|e| {
            e.page_id.trim_start_matches("page-").parse::<usize>().map(|i| i >= 8).unwrap_or(false)
        })
        .count();
    println!("\n{shown} extractions total; {beyond_kb} from films the seed KB does not contain.");
    assert!(beyond_kb > 0, "expected long-tail extractions");

    // --- 6. ...and from a page the trained site has never seen, without
    //        re-training: the template signatures place it in its cluster
    //        and that cluster's frozen model extracts it ---
    let genre = "Drama";
    let late_page = format!(
        "<html><body><div class=nav><a>Home</a><a>Help</a></div>\
         <h1 class=title>A Film From The Future</h1>\
         <div class=info>\
         <div class=row><span class=label>Director:</span>\
         <span class=val>Director Yet Unborn</span></div>\
         <div class=row><span class=label>Genre:</span>\
         <span class=val>{genre}</span></div>\
         </div>\
         <div class=cast><h2>Cast</h2><ul>\
         <li>Future Star 0</li><li>Future Star 1</li><li>Future Star 2</li>\
         </ul></div>\
         <div class=footer><span>terms</span><span>privacy</span>\
         <span>contact</span></div></body></html>"
    );
    let late = trained.extract_page("page-late", &late_page);
    println!("\nServed after training, page-late yields {} extractions:", late.len());
    for e in &late {
        let pred = match &e.label {
            ExtractLabel::Name => "name".to_string(),
            ExtractLabel::Pred(p) => kb.ontology().pred_name(*p).to_string(),
        };
        println!("  {:22} | {:10} | {:20} | {:.2}", e.subject, pred, e.object, e.confidence);
    }
    assert!(
        late.iter().any(|e| e.object == "Director Yet Unborn"),
        "the frozen model must extract from the late-arriving page"
    );
}
