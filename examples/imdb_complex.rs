//! The complex-website experiment (paper §5.4) as a runnable example:
//! generate the IMDb-like dataset, run CERES-FULL and CERES-TOPIC, print
//! per-predicate quality and diagnose topic-identification mistakes.
//!
//! ```text
//! cargo run --release --example imdb_complex [scale]
//! ```

use ceres::eval::experiments::{build_imdb, render_table, ExpConfig};
use ceres::eval::harness::{eval_page_ids, EvalProtocol, SystemKind};
use ceres::eval::metrics::{score_topics, GoldIndex, TripleScorer};
use ceres::text::normalize;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let cfg = ExpConfig { seed: 42, scale, threads: None };
    eprintln!("generating IMDb-like dataset at scale {scale}…");
    let imdb = build_imdb(&cfg);

    for domain in ["Person", "Film/TV"] {
        let site = if domain == "Person" { &imdb.data.person_site } else { &imdb.data.movie_site };
        let gold = GoldIndex::new(site);
        let ids = eval_page_ids(site, EvalProtocol::SplitHalves);

        println!("\n=== {domain} ({} pages) ===", site.pages.len());
        let mut rows = Vec::new();
        for system in [SystemKind::CeresTopic, SystemKind::CeresFull] {
            let run = &imdb.runs.iter().find(|(d, s, _)| *d == domain && *s == system).unwrap().2;
            let scorer = TripleScorer::score(&imdb.data.kb, &gold, &ids, &run.extractions, None);
            let o = scorer.overall();
            rows.push(vec![
                system.label().to_string(),
                format!("{:.2}", o.precision()),
                format!("{:.2}", o.recall()),
                format!("{:.2}", o.f1()),
                run.extractions.len().to_string(),
            ]);
            // Topic diagnostics for the full system.
            if system == SystemKind::CeresFull {
                let prf = score_topics(&imdb.data.kb, &gold, &run.topic_records);
                println!(
                    "topic identification: P={:.2} R={:.2} F1={:.2}",
                    prf.precision(),
                    prf.recall(),
                    prf.f1()
                );
                let mut mismatches = 0;
                for r in &run.topic_records {
                    let Some(g) = gold.gold(&r.page_id) else { continue };
                    let (Some(found), Some(want)) = (&r.topic, &g.topic) else { continue };
                    let f = normalize(found);
                    let w = normalize(want);
                    if f != w && !f.starts_with(&format!("{w} ")) && mismatches < 5 {
                        println!("  wrong topic on {}: found {found:?}, gold {want:?}", r.page_id);
                        mismatches += 1;
                    }
                }
            }
        }
        println!("{}", render_table(&["System", "P", "R", "F1", "#Extr"], &rows));
    }
}
