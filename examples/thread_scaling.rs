//! The determinism contract, live: stream the same site through a
//! `SiteSession` at 1, 2, and N threads, verify the three `SiteRun`s are
//! identical, and print the wall times. `CERES_THREADS` (or
//! `CeresConfig::threads`) picks the fan-out — including how many pages
//! the ingest reorder buffer parses concurrently — and the output never
//! depends on it.
//!
//! ```text
//! cargo run --release --example thread_scaling [scale]
//! ```

use ceres::prelude::*;
use ceres::synth::swde::{movie_vertical, SwdeConfig};
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    eprintln!("generating one movie-vertical site at scale {scale}…");
    let (v, _) = movie_vertical(SwdeConfig { seed: 42, scale });
    let site = &v.sites[0];

    let available = Runtime::from_env().threads();
    let mut baseline: Option<SiteRun> = None;
    for threads in [1, 2, available.max(2)] {
        let cfg = CeresConfig::new(42).with_threads(threads);
        let t0 = Instant::now();
        // Ingest: one push per page, parsing overlapped by the reorder
        // buffer; train once; serve the site's own pages.
        let mut session = SiteSession::builder(&v.kb).config(cfg).build();
        for p in &site.pages {
            session.push_page(p.id.clone(), p.html.clone());
        }
        let trained = session.finish_training();
        let n_pages = trained.n_training_pages();
        let extractions = trained.extract_training_pages();
        let run = trained.into_site_run(extractions, n_pages);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "threads={threads:<2}  {:>8.1} ms   {} extractions, {} clusters, trained={}",
            ms,
            run.extractions.len(),
            run.stats.n_clusters,
            run.stats.trained
        );
        match &baseline {
            None => baseline = Some(run),
            Some(b) => {
                assert_eq!(b.stats, run.stats);
                assert_eq!(b.extractions, run.extractions);
                assert_eq!(b.topic_records, run.topic_records);
                assert_eq!(b.annotation_records, run.annotation_records);
            }
        }
    }
    println!("all runs byte-identical ✓");
}
