//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! provides the subset of proptest the CERES workspace's property tests
//! use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`);
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * string strategies from a small regex subset (`.`, `[a-z]`-style
//!   classes, `*`/`+`/`?`/`{m}`/`{m,n}` quantifiers, literals);
//! * numeric range strategies (`0u32..64`, `-2.0f32..2.0`, …);
//! * tuple strategies and [`collection::vec`] / [`collection::btree_set`].
//!
//! Unlike real proptest there is no shrinking: failures report the
//! generated inputs via the panic message and the fixed per-test RNG makes
//! every run reproducible.

pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic RNG driving generation (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    // ---- string strategies from a regex subset ----

    enum Atom {
        Any,
        Class(Vec<(char, char)>),
        Literal(char),
        /// Parenthesized group: alternation of sequences.
        Group(Vec<Vec<Piece>>),
    }

    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    struct Parser {
        chars: Vec<char>,
        i: usize,
        pattern: String,
    }

    /// Recursive-descent parser for the regex subset the workspace's tests
    /// use: atoms are `.`, `[a-z0-9_]`-style classes, literal chars, or
    /// `(..|..)` groups; quantifiers are `*`, `+`, `?`, `{m}`, `{m,n}`.
    /// Unsupported syntax panics so misuse is caught at test time rather
    /// than silently generating garbage.
    impl Parser {
        fn new(pattern: &str) -> Self {
            Parser { chars: pattern.chars().collect(), i: 0, pattern: pattern.to_string() }
        }

        fn peek(&self) -> Option<char> {
            self.chars.get(self.i).copied()
        }

        /// alternation := sequence ('|' sequence)*
        fn alternation(&mut self) -> Vec<Vec<Piece>> {
            let mut branches = vec![self.sequence()];
            while self.peek() == Some('|') {
                self.i += 1;
                branches.push(self.sequence());
            }
            branches
        }

        /// sequence := (atom quantifier?)*  — stops at '|' or ')'.
        fn sequence(&mut self) -> Vec<Piece> {
            let mut pieces = Vec::new();
            while let Some(c) = self.peek() {
                if c == '|' || c == ')' {
                    break;
                }
                let atom = self.atom();
                let (min, max) = self.quantifier();
                pieces.push(Piece { atom, min, max });
            }
            pieces
        }

        fn atom(&mut self) -> Atom {
            match self.chars[self.i] {
                '.' => {
                    self.i += 1;
                    Atom::Any
                }
                '(' => {
                    self.i += 1;
                    let branches = self.alternation();
                    assert_eq!(self.peek(), Some(')'), "unbalanced group in {:?}", self.pattern);
                    self.i += 1;
                    Atom::Group(branches)
                }
                '[' => {
                    self.i += 1;
                    let mut ranges = Vec::new();
                    while self.i < self.chars.len() && self.chars[self.i] != ']' {
                        let lo = self.chars[self.i];
                        if self.i + 2 < self.chars.len()
                            && self.chars[self.i + 1] == '-'
                            && self.chars[self.i + 2] != ']'
                        {
                            ranges.push((lo, self.chars[self.i + 2]));
                            self.i += 3;
                        } else {
                            ranges.push((lo, lo));
                            self.i += 1;
                        }
                    }
                    assert!(
                        self.i < self.chars.len(),
                        "unterminated class in pattern {:?}",
                        self.pattern
                    );
                    self.i += 1; // skip ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    assert!(
                        self.i + 1 < self.chars.len(),
                        "dangling escape in pattern {:?}",
                        self.pattern
                    );
                    self.i += 2;
                    Atom::Literal(self.chars[self.i - 1])
                }
                c => {
                    assert!(
                        !"^$".contains(c),
                        "unsupported regex syntax {c:?} in pattern {:?}",
                        self.pattern
                    );
                    self.i += 1;
                    Atom::Literal(c)
                }
            }
        }

        fn quantifier(&mut self) -> (u32, u32) {
            match self.peek() {
                Some('*') => {
                    self.i += 1;
                    (0, 32)
                }
                Some('+') => {
                    self.i += 1;
                    (1, 32)
                }
                Some('?') => {
                    self.i += 1;
                    (0, 1)
                }
                Some('{') => {
                    let close = self.chars[self.i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unterminated {{..}} in {:?}", self.pattern))
                        + self.i;
                    let body: String = self.chars[self.i + 1..close].iter().collect();
                    self.i = close + 1;
                    if let Some((lo, hi)) = body.split_once(',') {
                        let lo: u32 = lo.trim().parse().expect("bad {m,n}");
                        let hi: u32 = if hi.trim().is_empty() {
                            lo + 32
                        } else {
                            hi.trim().parse().expect("bad {m,n}")
                        };
                        (lo, hi)
                    } else {
                        let n: u32 = body.trim().parse().expect("bad {n}");
                        (n, n)
                    }
                }
                _ => (1, 1),
            }
        }
    }

    fn parse_pattern(pattern: &str) -> Vec<Vec<Piece>> {
        let mut parser = Parser::new(pattern);
        let branches = parser.alternation();
        assert!(parser.peek().is_none(), "trailing {:?} in pattern {pattern:?}", parser.peek());
        branches
    }

    fn gen_branches(branches: &[Vec<Piece>], rng: &mut TestRng, out: &mut String) {
        let branch = &branches[rng.below(branches.len() as u64) as usize];
        for piece in branch {
            let n = piece.min + rng.below(u64::from(piece.max - piece.min + 1)) as u32;
            for _ in 0..n {
                match &piece.atom {
                    Atom::Any => out.push(gen_any_char(rng)),
                    Atom::Class(ranges) => out.push(gen_class_char(ranges, rng)),
                    Atom::Literal(c) => out.push(*c),
                    Atom::Group(inner) => gen_branches(inner, rng, out),
                }
            }
        }
    }

    /// Pool `.` draws from: mostly printable ASCII, with markup
    /// metacharacters over-represented (this workspace parses HTML) plus a
    /// sprinkling of unicode and whitespace.
    const ANY_EXTRA: &[char] = &[
        '<', '>', '&', '"', '\'', '/', '=', ' ', '\t', 'é', 'ß', 'Ω', '漢', '🎬', '\u{0301}',
        '\u{00a0}',
    ];

    fn gen_any_char(rng: &mut TestRng) -> char {
        match rng.below(4) {
            0 => ANY_EXTRA[rng.below(ANY_EXTRA.len() as u64) as usize],
            _ => (0x20u8 + rng.below(0x5f) as u8) as char,
        }
    }

    fn gen_class_char(ranges: &[(char, char)], rng: &mut TestRng) -> char {
        let total: u64 = ranges.iter().map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1).sum();
        debug_assert!(total > 0, "empty character class");
        let mut k = rng.below(total);
        for &(lo, hi) in ranges {
            let span = (hi as u64) - (lo as u64) + 1;
            if k < span {
                return char::from_u32(lo as u32 + k as u32).unwrap_or(lo);
            }
            k -= span;
        }
        unreachable!()
    }

    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let branches = parse_pattern(self);
            let mut out = String::new();
            gen_branches(&branches, rng, &mut out);
            out
        }
    }

    impl Strategy for String {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            self.as_str().generate(rng)
        }
    }

    // ---- numeric range strategies ----

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let v = (rng.next_u64() as u128) % span;
                    self.start.wrapping_add(v as $t)
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    // ---- combinators ----

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;

    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Vectors of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Sets of at most `size.end - 1` elements drawn from `element`
    /// (duplicates collapse, as in real proptest).
    pub fn btree_set<S: Strategy>(element: S, size: core::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert inside a `proptest!` body; reports the failing case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Expand property-test functions into plain `#[test]`s that loop over
/// `config.cases` generated inputs with a fixed deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // Seed from the test name so distinct tests explore
                // distinct streams, deterministically.
                let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    seed ^= u64::from(b);
                    seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
                }
                let mut rng = $crate::test_runner::TestRng::new(seed);
                for _case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}
