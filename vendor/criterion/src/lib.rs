//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the API surface the CERES benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `black_box`, `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros — with a deliberately simple measurement loop:
//! per bench it calibrates an iteration count to a ~100 ms sample, takes
//! `sample_size` samples, and prints min/mean/max per iteration.
//!
//! CLI compatibility (the flags `cargo bench` and CI pass):
//!
//! * `--test`  — smoke mode: run each bench body once and report `ok`;
//! * `--bench` — ignored (cargo appends it when `harness = false`);
//! * `<filter>` — positional substring filter on bench names.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample throughput annotation; printed alongside timings.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Two-part bench identifier (`function_id/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything `bench_function` accepts as a name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing driver handed to each bench body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` `self.iters` times, recording total wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark manager; parses its CLI args from the environment.
pub struct Criterion {
    sample_size: usize,
    smoke: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut smoke = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => smoke = true,
                a if a.starts_with("--") => {} // ignore harness flags (--bench, …)
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { sample_size: 20, smoke, filter }
    }
}

impl Criterion {
    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        sample_size: usize,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if !self.selected(id) {
            return;
        }
        if self.smoke {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }
        // Calibrate: grow the iteration count until one sample costs ≥ 20 ms.
        let mut iters: u64 = 1;
        let per_iter;
        loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
                per_iter = b.elapsed.as_secs_f64() / iters as f64;
                break;
            }
            iters *= 4;
        }
        // Sample, bounding total time per bench to keep full runs tolerable.
        let target = Duration::from_millis(100);
        let sample_iters = ((target.as_secs_f64() / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);
        let mut times = Vec::with_capacity(sample_size);
        let deadline = Instant::now() + Duration::from_secs(5);
        for _ in 0..sample_size {
            let mut b = Bencher { iters: sample_iters, elapsed: Duration::ZERO };
            f(&mut b);
            times.push(b.elapsed.as_secs_f64() / sample_iters as f64);
            if Instant::now() > deadline {
                break;
            }
        }
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let rate = match throughput {
            Some(Throughput::Bytes(b)) => {
                format!("  {:>10.1} MiB/s", b as f64 / mean / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) => format!("  {:>10.0} elem/s", n as f64 / mean),
            None => String::new(),
        };
        println!("{id:<44} [{} {} {}]{rate}", fmt_time(min), fmt_time(mean), fmt_time(max));
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let sample_size = self.sample_size;
        self.run_one(&id.id, None, sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A named group of related benches sharing throughput/sample settings.
/// Settings are scoped to the group (as in real criterion): they do not
/// leak to benches registered after `finish()`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().id);
        let throughput = self.throughput;
        self.criterion.run_one(&id, throughput, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().id);
        let throughput = self.throughput;
        self.criterion.run_one(&id, throughput, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Bundle bench functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
