//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements exactly the API surface the CERES workspace uses:
//!
//! * [`rngs::SmallRng`] — a small, fast, deterministic generator
//!   (xoshiro256++ seeded through SplitMix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and float ranges (half-open and
//!   inclusive), [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The generated streams are deterministic for a given seed — which is all
//! the synthetic-corpus generators require — but are **not** the same
//! streams the real `rand` crate would produce.

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`); panics on an empty
    /// range, matching the real crate's contract.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Sample a value of a standard-distribution type (`u32`, `u64`, `f64`, …).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool called with p={p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types [`Rng::gen`] can sample uniformly over their natural domain.
pub trait Standard {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

/// Map a random u64 to `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32(word: u64) -> f32 {
    (word >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                // Computed in u128, so even 0..=u64::MAX gives span 2^64 — never 0.
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let v = (rng.next_u64() as u128) % span;
                start.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + unit_f32(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64. Small state, fast, deterministic.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice operations driven by a generator.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=4);
            assert!(w <= 4);
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
