//! The persistence contract of the trained-site artifact:
//!
//! 1. a `TrainedSite` saved in one process and loaded in another serves
//!    **byte-identical** extractions to the in-memory session, at threads
//!    {1, 2, 8} on both the save and the load side (the file on disk is
//!    the process boundary — the codec stores no addresses, and CI's
//!    round-trip smoke additionally runs the two halves as literally
//!    separate `repro train` / `repro serve` processes);
//! 2. corrupted / truncated / version-bumped / wrong-KB bytes fail with a
//!    descriptive typed error — the loader never panics on any input
//!    (pinned deterministically and by proptest over mutated artifacts).

use ceres::eval::harness::{protocol_pages, EvalProtocol};
use ceres::prelude::*;
use ceres::store::Error as StoreError;
use ceres::synth::swde::{movie_vertical, SwdeConfig};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

type Pages = Vec<(String, String)>;

fn fixture() -> (ceres::synth::swde::SwdeVertical, Pages, Pages) {
    let (v, _) = movie_vertical(SwdeConfig { seed: 77, scale: 0.02 });
    let (train, eval) = protocol_pages(&v.sites[0], EvalProtocol::SplitHalves);
    let eval = eval.expect("split halves has an eval half");
    (v, train, eval)
}

fn train_at<'kb>(kb: &'kb Kb, train: &Pages, threads: usize) -> TrainedSite<'kb> {
    let mut session =
        SiteSession::builder(kb).config(CeresConfig::new(77).with_threads(threads)).build();
    session.ingest(train.iter().cloned());
    session.finish_training()
}

#[test]
fn loaded_artifact_serves_byte_identically_across_the_thread_matrix() {
    let (v, train, eval) = fixture();
    let kb = &v.kb;
    let reference_site = train_at(kb, &train, 1);
    let reference = reference_site.extract_batch(&eval);
    assert!(
        !reference.is_empty() && reference_site.stats().trained,
        "fixture must train and extract"
    );
    let bytes = reference_site.to_bytes().expect("save");

    // The artifact bytes themselves are thread-count invariant: training
    // at any parallelism serializes to the identical file.
    for threads in THREAD_COUNTS {
        let other = train_at(kb, &train, threads).to_bytes().expect("save");
        assert_eq!(other, bytes, "artifact bytes differ when trained at {threads} threads");
    }

    // Round trip through a real file (the process boundary): loading at
    // any thread count serves the eval half byte-identically — f64
    // confidences included.
    let dir = std::env::temp_dir();
    let path = dir.join(format!("ceres-artifact-test-{}.ceres", std::process::id()));
    std::fs::write(&path, &bytes).expect("write artifact file");
    for threads in THREAD_COUNTS {
        let file = std::fs::File::open(&path).expect("open artifact file");
        let loaded =
            TrainedSite::load_on(kb, Runtime::new(threads), file).expect("load artifact from file");
        assert_eq!(
            loaded.extract_batch(&eval),
            reference,
            "loaded artifact diverged at {threads} threads"
        );
        // One-at-a-time serving agrees with the batch path too.
        for (id, html) in eval.iter().take(3) {
            assert_eq!(loaded.extract_page(id, html), reference_site.extract_page(id, html));
        }
        // Training-side records crossed the boundary; the corpus did not.
        assert_eq!(loaded.stats(), reference_site.stats());
        assert_eq!(loaded.topic_records(), reference_site.topic_records());
        assert_eq!(loaded.n_training_pages(), 0);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bumped_format_version_fails_descriptively() {
    let (v, train, _) = fixture();
    let kb = &v.kb;
    let bytes = train_at(kb, &train, 1).to_bytes().expect("save");
    // Byte 8 is the format-version varint, right after the 8-byte magic.
    let mut bumped = bytes.clone();
    bumped[8] = 0x7f;
    let Err(err) = TrainedSite::load(kb, &bumped[..]) else {
        panic!("future format version must be refused");
    };
    assert!(matches!(err, StoreError::UnsupportedVersion { .. }), "{err}");
    let msg = err.to_string();
    assert!(msg.contains("version") && msg.contains("not supported"), "{msg}");
}

#[test]
fn corrupted_sections_and_truncations_fail_without_panicking() {
    let (v, train, _) = fixture();
    let kb = &v.kb;
    let bytes = train_at(kb, &train, 1).to_bytes().expect("save");

    // Every prefix truncation errors cleanly (sampled stride keeps the
    // test fast; proptest below covers arbitrary cut points).
    for cut in (0..bytes.len()).step_by(977) {
        assert!(TrainedSite::load(kb, &bytes[..cut]).is_err(), "cut at {cut}");
    }

    // A flipped byte anywhere in a section payload trips its checksum
    // with a section-naming message.
    let mut corrupt = bytes.clone();
    let mid = bytes.len() / 2;
    corrupt[mid] ^= 0x20;
    let Err(err) = TrainedSite::load(kb, &corrupt[..]) else {
        panic!("corrupted payload must be refused");
    };
    let msg = err.to_string();
    assert!(!msg.is_empty(), "error must describe the failure: {msg}");

    // Garbage that is not an artifact at all.
    assert!(TrainedSite::load(kb, &b"not an artifact, sorry"[..]).is_err());
    assert!(TrainedSite::load(kb, &[][..]).is_err());
}

#[test]
fn wrong_kb_is_refused_by_fingerprint() {
    let (v, train, _) = fixture();
    let bytes = train_at(&v.kb, &train, 1).to_bytes().expect("save");
    // A different seed produces a different KB with the *same* ontology
    // shape and near-identical counts — only a content-covering
    // fingerprint catches the swap.
    let (other, _) = movie_vertical(SwdeConfig { seed: 78, scale: 0.02 });
    let Err(err) = TrainedSite::load(&other.kb, &bytes[..]) else {
        panic!("foreign KB must be refused");
    };
    assert!(err.to_string().contains("different KB"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fuzz the loader: single-byte mutations and truncations of a valid
    /// artifact must always yield Ok or a typed error — executing the
    /// load *is* the assertion (a panic fails the test).
    #[test]
    fn prop_mutated_artifacts_never_panic_the_loader(
        flip_at in 0usize..60_000,
        flip_bits in 1u8..255,
        cut_frac in 0.0f64..1.0,
    ) {
        // One shared fixture per process would be nicer, but the shim's
        // proptest! body re-enters per case; a OnceLock keeps it cheap.
        static FIXTURE: std::sync::OnceLock<(ceres::synth::swde::SwdeVertical, Vec<u8>)> =
            std::sync::OnceLock::new();
        let (v, bytes) = FIXTURE.get_or_init(|| {
            let (v, train, _) = fixture();
            let bytes = train_at(&v.kb, &train, 1).to_bytes().expect("save");
            (v, bytes)
        });
        let kb = &v.kb;

        let mut mutated = bytes.clone();
        let at = flip_at % mutated.len();
        mutated[at] ^= flip_bits;
        let _ = TrainedSite::load(kb, &mutated[..]);

        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let _ = TrainedSite::load(kb, &bytes[..cut.min(bytes.len())]);

        // Mutation + truncation combined.
        let _ = TrainedSite::load(kb, &mutated[..cut.min(mutated.len())]);
    }
}
