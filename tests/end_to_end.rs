//! Cross-crate integration tests: synthetic world → rendered site → parsed
//! DOM → CERES pipeline → scored extractions.

use ceres::eval::harness::{eval_page_ids, run_ceres_on_site, EvalProtocol, SystemKind};
use ceres::eval::metrics::{GoldIndex, TripleScorer};
use ceres::prelude::*;
use ceres::synth::swde::{movie_vertical, SwdeConfig};

fn tiny_cfg() -> SwdeConfig {
    SwdeConfig { seed: 77, scale: 0.02 }
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let (v, _) = movie_vertical(tiny_cfg());
    let cfg = CeresConfig::new(7);
    let site = &v.sites[0];
    let a = run_ceres_on_site(&v.kb, site, EvalProtocol::SplitHalves, &cfg, SystemKind::CeresFull);
    let b = run_ceres_on_site(&v.kb, site, EvalProtocol::SplitHalves, &cfg, SystemKind::CeresFull);
    assert_eq!(a.extractions.len(), b.extractions.len());
    assert_eq!(a.stats.n_annotations, b.stats.n_annotations);
    for (x, y) in a.extractions.iter().zip(&b.extractions) {
        assert_eq!(x.page_id, y.page_id);
        assert_eq!(x.object, y.object);
        assert!((x.confidence - y.confidence).abs() < 1e-12);
    }
}

#[test]
fn extractions_reference_real_fields() {
    let (v, _) = movie_vertical(tiny_cfg());
    let cfg = CeresConfig::new(7);
    let site = &v.sites[1];
    let run =
        run_ceres_on_site(&v.kb, site, EvalProtocol::SplitHalves, &cfg, SystemKind::CeresFull);
    assert!(run.stats.trained, "{:?}", run.stats);
    let gold = GoldIndex::new(site);
    // Every extraction carries a gt id that exists on its page.
    for e in &run.extractions {
        let g = gold.gold(&e.page_id).expect("page exists");
        let gt = e.gt_id.expect("generated pages stamp every field");
        // gt ids are dense per page: must be < number of stamped fields,
        // which is bounded by the page HTML's data-gt count.
        let page = site.pages.iter().find(|p| p.id == e.page_id).unwrap();
        let stamps = page.html.matches("data-gt=").count() as u32;
        assert!(gt < stamps, "gt {gt} out of range ({stamps} stamps)");
        let _ = g;
    }
}

#[test]
fn clean_movie_site_extracts_with_high_precision() {
    let (v, _) = movie_vertical(tiny_cfg());
    let cfg = CeresConfig::new(7);
    let site = &v.sites[2];
    let run =
        run_ceres_on_site(&v.kb, site, EvalProtocol::SplitHalves, &cfg, SystemKind::CeresFull);
    let gold = GoldIndex::new(site);
    let ids = eval_page_ids(site, EvalProtocol::SplitHalves);
    let scorer = TripleScorer::score(&v.kb, &gold, &ids, &run.extractions, None);
    let overall = scorer.overall();
    assert!(
        overall.precision() > 0.8,
        "precision {:.2} too low (tp={} fp={})",
        overall.precision(),
        overall.tp,
        overall.fp
    );
    assert!(overall.recall() > 0.2, "recall {:.2} too low", overall.recall());
}

#[test]
fn full_annotation_mode_beats_naive_on_annotation_precision() {
    use ceres::eval::harness::annotation_page_ids;
    use ceres::eval::metrics::score_annotations;
    let imdb = ceres::synth::imdb::generate(5, 0.02);
    let cfg = CeresConfig::new(5);
    let site = &imdb.movie_site;
    let gold = GoldIndex::new(site);
    let ann_ids = annotation_page_ids(site, EvalProtocol::SplitHalves);

    let prf_of = |system: SystemKind| {
        let run = run_ceres_on_site(&imdb.kb, site, EvalProtocol::SplitHalves, &cfg, system);
        let per_pred = score_annotations(&imdb.kb, &gold, &ann_ids, &run.annotation_records);
        let mut total = ceres::eval::metrics::Prf::default();
        for p in per_pred.values() {
            total.add(*p);
        }
        total
    };
    let full = prf_of(SystemKind::CeresFull);
    let naive = prf_of(SystemKind::CeresTopic);
    assert!(
        full.precision() >= naive.precision(),
        "full {:.3} must be at least naive {:.3}",
        full.precision(),
        naive.precision()
    );
}

#[test]
fn threshold_sweep_trades_recall_for_precision() {
    let (v, _) = movie_vertical(tiny_cfg());
    let site = &v.sites[3];
    let gold = GoldIndex::new(site);
    let ids = eval_page_ids(site, EvalProtocol::SplitHalves);
    let mut cfg = CeresConfig::new(7);
    cfg.extract.threshold = 0.5;
    let run =
        run_ceres_on_site(&v.kb, site, EvalProtocol::SplitHalves, &cfg, SystemKind::CeresFull);

    // Extraction counts must shrink monotonically as the threshold rises.
    let count_at = |t: f64| run.extractions.iter().filter(|e| e.confidence >= t).count();
    let mut prev = usize::MAX;
    for t in [0.5, 0.6, 0.7, 0.8, 0.9] {
        let n = count_at(t);
        assert!(n <= prev);
        prev = n;
    }
    let _ = (gold, ids);
}
