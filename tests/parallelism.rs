//! Serial-vs-parallel equivalence suite: `SiteRun` output (extractions,
//! topic/annotation records, stats) must be **byte-identical** across
//! `threads ∈ {1, 2, 8}` — the determinism contract of `ceres-runtime`
//! carried through every pipeline stage's ordered merge.

use ceres::eval::harness::{run_ceres_on_site, EvalProtocol, SystemKind};
use ceres::prelude::*;
use ceres::synth::swde::{movie_vertical, SwdeConfig};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn assert_identical(serial: &SiteRun, other: &SiteRun, label: &str) {
    assert_eq!(serial.stats, other.stats, "{label}: stats diverged");
    assert_eq!(serial.extractions, other.extractions, "{label}: extractions diverged");
    assert_eq!(serial.topic_records, other.topic_records, "{label}: topic records diverged");
    assert_eq!(
        serial.annotation_records, other.annotation_records,
        "{label}: annotation records diverged"
    );
}

#[test]
fn swde_movie_site_run_is_thread_count_invariant() {
    let (v, _) = movie_vertical(SwdeConfig { seed: 77, scale: 0.02 });
    let site = &v.sites[0];
    let run_at = |threads: usize| {
        let cfg = CeresConfig::new(7).with_threads(threads);
        run_ceres_on_site(&v.kb, site, EvalProtocol::SplitHalves, &cfg, SystemKind::CeresFull)
    };
    let serial = run_at(THREAD_COUNTS[0]);
    assert!(serial.stats.trained, "fixture must train: {:?}", serial.stats);
    assert!(!serial.extractions.is_empty());
    for &threads in &THREAD_COUNTS[1..] {
        assert_identical(&serial, &run_at(threads), &format!("threads={threads}"));
    }
}

#[test]
fn whole_site_protocol_is_thread_count_invariant() {
    // The CommonCrawl protocol (extract from the annotation pages) takes
    // the `ext_idx = ann_idx` path through the extract planner.
    let (v, _) = movie_vertical(SwdeConfig { seed: 77, scale: 0.02 });
    let site = &v.sites[1];
    let run_at = |threads: usize| {
        let cfg = CeresConfig::new(7).with_threads(threads);
        run_ceres_on_site(&v.kb, site, EvalProtocol::WholeSite, &cfg, SystemKind::CeresFull)
    };
    let serial = run_at(THREAD_COUNTS[0]);
    for &threads in &THREAD_COUNTS[1..] {
        assert_identical(&serial, &run_at(threads), &format!("threads={threads}"));
    }
}

#[test]
fn annotation_budget_allocation_is_thread_count_invariant() {
    // `max_annotated_pages` is the one knob that used to chain clusters
    // sequentially; the planning pass must allocate the same per-cluster
    // budgets at any thread count.
    let (v, _) = movie_vertical(SwdeConfig { seed: 77, scale: 0.02 });
    let site = &v.sites[0];
    let run_at = |threads: usize| {
        let mut cfg = CeresConfig::new(7).with_threads(threads);
        cfg.max_annotated_pages = Some(4);
        run_ceres_on_site(&v.kb, site, EvalProtocol::SplitHalves, &cfg, SystemKind::CeresFull)
    };
    let serial = run_at(THREAD_COUNTS[0]);
    assert!(serial.stats.n_annotated_pages <= 4);
    for &threads in &THREAD_COUNTS[1..] {
        assert_identical(&serial, &run_at(threads), &format!("threads={threads}"));
    }
}

#[test]
fn baseline_system_is_thread_count_invariant() {
    // CERES-BASELINE shares the parse stage and the frozen feature space
    // with the main pipeline.
    let (v, _) = movie_vertical(SwdeConfig { seed: 77, scale: 0.02 });
    let site = &v.sites[2];
    let run_at = |threads: usize| {
        let cfg = CeresConfig::new(7).with_threads(threads);
        run_ceres_on_site(&v.kb, site, EvalProtocol::SplitHalves, &cfg, SystemKind::CeresBaseline)
    };
    let serial = run_at(THREAD_COUNTS[0]);
    for &threads in &THREAD_COUNTS[1..] {
        assert_identical(&serial, &run_at(threads), &format!("threads={threads}"));
    }
}
