//! The batched, memoized KB match path: `Kb::match_batch` must be
//! result-identical to per-field `Kb::match_norm` (same inputs, identical
//! `ValueId` slices in field order) across shard counts and with or
//! without a `MatchCache` in front, and the views built through the
//! folded batch path must be byte-identical at every thread count.

use ceres::kb::{Kb, KbBuilder, MatchCache, MatcherConfig, Ontology};
use ceres::prelude::*;
use ceres::synth::swde::{movie_vertical, SwdeConfig};
use ceres::text::normalize;
use proptest::prelude::*;

/// A KB with entities, aliases, literals, and deliberate ambiguity, built
/// at the given shard count.
fn fixture_kb(n_shards: usize) -> Kb {
    let mut o = Ontology::new();
    let film = o.register_type("Film");
    let person = o.register_type("Person");
    let directed = o.register_pred("film.directedBy", film, true);
    let genre = o.register_pred("film.genre", film, true);
    let mut b =
        KbBuilder::new(o).with_config(MatcherConfig { n_shards, ..MatcherConfig::default() });
    for i in 0..40 {
        let f = b.entity(film, &format!("Film Title {i}"));
        let p = b.entity(person, &format!("Director Person {i}"));
        // Fuzzy alias ("Person N, Director" token-sorts like the name)
        // and a shared ambiguous alias.
        b.alias(p, &format!("Person {i}, Director"));
        b.alias(f, "Pilot");
        let g = b.literal(if i % 2 == 0 { "Drama" } else { "Comedy" });
        b.triple(f, directed, p);
        b.triple(f, genre, g);
    }
    b.build()
}

/// Probe strings drawn from the KB vocabulary (exact hits, fuzzy hits,
/// ambiguity) mixed with junk and empties. One alternation branch per
/// probe family; `[0-9]|[1-3][0-9]` spans exactly the fixture's 0..40
/// entity indices.
fn probe_strategy() -> impl Strategy<Value = Vec<String>> {
    let one = "(Film Title ([0-9]|[1-3][0-9])\
               |director person ([0-9]|[1-3][0-9])\
               |person ([0-9]|[1-3][0-9]) director\
               |Pilot\
               |Drama\
               |\
               |[a-z ]{0,12})";
    proptest::collection::vec(one, 0..30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `match_batch(norms)[i] == match_norm(norms[i])` — identical
    /// ValueId slices in field order, across shard counts, raw and
    /// through caches of several capacities (eviction included).
    #[test]
    fn match_batch_equals_per_field_match_norm(raw in probe_strategy()) {
        let norms: Vec<String> = raw.iter().map(|s| normalize(s)).collect();
        for n_shards in [1usize, 16, 64] {
            let kb = fixture_kb(n_shards);
            let per_field: Vec<&[ValueId]> = norms.iter().map(|n| kb.match_norm(n)).collect();
            let batch = kb.match_batch(&norms);
            prop_assert_eq!(&batch, &per_field, "n_shards={} uncached", n_shards);
            for capacity in [1usize, 4, 1024] {
                let mut cache = MatchCache::new(&kb, capacity);
                // Two rounds: the second replays every lookup warm.
                for round in 0..2 {
                    let cached = cache.match_batch(&norms);
                    prop_assert_eq!(
                        &cached, &per_field,
                        "n_shards={} capacity={} round={}", n_shards, capacity, round
                    );
                }
                let seq: Vec<&[ValueId]> = norms.iter().map(|n| cache.match_norm(n)).collect();
                prop_assert_eq!(&seq, &per_field, "n_shards={} capacity={} seq", n_shards, capacity);
            }
        }
    }
}

/// The views-path fold: `PageView::build` (unique-text folding + batch
/// matching, with and without a shared cache) must reproduce the naive
/// per-field matcher loop field-for-field.
#[test]
fn built_views_equal_naive_per_field_matching() {
    let (v, _) = movie_vertical(SwdeConfig { seed: 9, scale: 0.02 });
    let site = &v.sites[0];
    let mut cache = MatchCache::new(&v.kb, 256);
    for (id, html) in site.pages.iter().map(|p| (&p.id, &p.html)).take(12) {
        let built = ceres::core::page::PageView::build(id, html, &v.kb);
        let cached = ceres::core::page::PageView::build_with_cache(id, html, &v.kb, &mut cache);
        assert_eq!(built.fields.len(), cached.fields.len(), "page {id}");
        let doc = parse_html(html);
        for (fi, node) in doc.text_fields().into_iter().enumerate() {
            let norm = normalize(&doc.own_text(node));
            let want = v.kb.match_norm(&norm);
            assert_eq!(built.fields[fi].norm, norm, "page {id} field {fi}");
            assert_eq!(built.fields[fi].matches, want, "page {id} field {fi} (folded)");
            assert_eq!(cached.fields[fi].matches, want, "page {id} field {fi} (cached)");
        }
    }
}

/// Views-path byte-identity at threads {1, 2, 8} with folding enabled:
/// the full pipeline over pre-built views, and the streaming session
/// (micro-batched ingest with per-batch caches), must produce identical
/// extractions at every thread count.
#[test]
fn views_path_output_is_thread_invariant_with_folding() {
    let (v, _) = movie_vertical(SwdeConfig { seed: 31, scale: 0.02 });
    let site = &v.sites[0];
    let pages: Vec<(String, String)> =
        site.pages.iter().map(|p| (p.id.clone(), p.html.clone())).collect();

    let run_at = |threads: usize| {
        let cfg = CeresConfig::new(5).with_threads(threads);
        let views: Vec<ceres::core::page::PageView> = pages
            .iter()
            .map(|(id, html)| ceres::core::page::PageView::build(id, html, &v.kb))
            .collect();
        ceres::core::pipeline::run_site_views(&v.kb, &views, None, &cfg, AnnotationMode::Full)
    };
    let stream_at = |threads: usize| {
        let cfg = CeresConfig::new(5).with_threads(threads);
        let mut session = SiteSession::builder(&v.kb).config(cfg).build();
        session.ingest(pages.iter().cloned());
        let trained = session.finish_training();
        trained.extract_training_pages()
    };

    let serial = run_at(1);
    assert!(serial.stats.trained, "fixture must train: {:?}", serial.stats);
    assert!(!serial.extractions.is_empty());
    let serial_stream = stream_at(1);
    for threads in [2usize, 8] {
        let run = run_at(threads);
        assert_eq!(serial.extractions, run.extractions, "views path diverged at t={threads}");
        assert_eq!(serial.stats, run.stats, "views stats diverged at t={threads}");
        let streamed = stream_at(threads);
        assert_eq!(serial_stream, streamed, "streaming session diverged at t={threads}");
    }
    // Batch and streaming agree with each other, too.
    assert_eq!(serial.extractions, serial_stream, "views path vs streaming session");
}
