//! Integration tests for the §5.2 baselines: VERTEX++ and CERES-BASELINE.

use ceres::eval::harness::{eval_page_ids, run_vertex_on_site, EvalProtocol};
use ceres::eval::metrics::{GoldIndex, PageHitScorer};
use ceres::prelude::*;
use ceres::synth::swde::{nba_vertical, university_vertical, SwdeConfig};

#[test]
fn vertex_with_two_manual_pages_is_near_perfect_on_nba() {
    let (v, _) = nba_vertical(SwdeConfig { seed: 3, scale: 0.02 });
    let attrs: Vec<&str> = v.attributes.iter().map(|(_, p)| *p).collect();
    let mut f1s = Vec::new();
    for site in v.sites.iter().take(3) {
        let run = run_vertex_on_site(&v.kb, site, EvalProtocol::SplitHalves, 2, None);
        let gold = GoldIndex::new(site);
        let ids = eval_page_ids(site, EvalProtocol::SplitHalves);
        let f1 = PageHitScorer::score(&v.kb, &gold, &ids, &run.extractions, &attrs).mean_f1(&attrs);
        f1s.push(f1);
    }
    let mean = f1s.iter().sum::<f64>() / f1s.len() as f64;
    assert!(mean > 0.85, "Vertex++ mean F1 {mean:.2}, per-site {f1s:?}");
}

#[test]
fn vertex_handles_multi_valued_lists_via_wildcards() {
    // The University vertical has single-valued fields; Movie cast lists
    // are multi-valued. Check Vertex extracts a full list.
    use ceres::synth::swde::movie_vertical;
    let (v, _) = movie_vertical(SwdeConfig { seed: 3, scale: 0.02 });
    let site = &v.sites[0];
    let run = run_vertex_on_site(&v.kb, site, EvalProtocol::SplitHalves, 2, None);
    let cast_pred = v.kb.ontology().pred_by_name(ceres::synth::schema::movie::HAS_CAST_MEMBER);
    let cast_extractions = run
        .extractions
        .iter()
        .filter(|e| matches!(&e.label, ExtractLabel::Pred(p) if Some(*p) == cast_pred))
        .count();
    // Cast lists have ≥5 members per page; with dozens of eval pages the
    // wildcarded rule must fire far more than once per page.
    assert!(
        cast_extractions > run.stats.n_extraction_pages,
        "cast extractions {cast_extractions} vs pages {}",
        run.stats.n_extraction_pages
    );
}

#[test]
fn pairwise_baseline_trains_and_oom_guard_fires() {
    use ceres::prelude::{run_baseline, BaselineConfig};
    let (v, _) = university_vertical(SwdeConfig { seed: 3, scale: 0.01 });
    let site = &v.sites[0];
    let train: Vec<(String, String)> =
        site.pages.iter().step_by(2).map(|p| (p.id.clone(), p.html.clone())).collect();
    let cfg = CeresConfig::new(3);

    let ok = run_baseline(&v.kb, &train, None, &cfg, &BaselineConfig::default());
    assert!(!ok.stats.oom);

    let oom = run_baseline(
        &v.kb,
        &train,
        None,
        &cfg,
        &BaselineConfig { max_pairs: 10, ..Default::default() },
    );
    assert!(oom.stats.oom, "tiny budget must trip the OOM guard");
    assert!(oom.extractions.is_empty());
}

#[test]
fn university_type_trap_hurts_the_trap_site_only() {
    use ceres::eval::harness::{run_ceres_on_site, SystemKind};
    let (v, _) = university_vertical(SwdeConfig { seed: 3, scale: 0.02 });
    let cfg = CeresConfig::new(3);
    let type_pred = ceres::synth::schema::university::TYPE;
    let prec_of = |site: &Site| {
        let run =
            run_ceres_on_site(&v.kb, site, EvalProtocol::SplitHalves, &cfg, SystemKind::CeresFull);
        let gold = GoldIndex::new(site);
        let ids = eval_page_ids(site, EvalProtocol::SplitHalves);
        let scorer = ceres::eval::metrics::TripleScorer::score(
            &v.kb,
            &gold,
            &ids,
            &run.extractions,
            Some(&[type_pred]),
        );
        scorer.overall()
    };
    // Site 7 carries the search-box trap (both "Public" and "Private" on
    // every page); a clean site should do at least as well on Type.
    let clean = prec_of(&v.sites[1]);
    let trap = prec_of(&v.sites[7]);
    assert!(
        clean.f1() >= trap.f1() || trap.precision() < 1.0,
        "trap site should not outperform clean site: clean={clean:?} trap={trap:?}"
    );
}
