//! Fault isolation end-to-end: the deterministic poison corpus through
//! `SiteSession` → `finish_training` → `try_extract_batch` without ever
//! aborting. Bad pages are quarantined with the right `PageError`, good
//! pages are byte-identical to a clean run at 1, 2, and 8 threads, and
//! the drift watchdog fires on a mid-crawl template-drift tail.
//!
//! The seeded-panic half (real `panic!`s detonated by the test-only
//! `fault-inject` feature) is gated behind that feature:
//! `cargo test --features fault-inject --test fault_isolation`. CI's
//! fault smoke exercises the same hook through `repro serve
//! --fault-inject`.

use ceres::core::{DriftConfig, ExtractOutcome, PageError, SiteSession};
use ceres::prelude::*;
use ceres::synth::hostile::{self, hostile_corpus, Expect, FaultPlan};
use ceres::synth::swde::{movie_vertical, SwdeConfig};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn fixture() -> (ceres::synth::swde::SwdeVertical, Vec<(String, String)>) {
    let (v, _) = movie_vertical(SwdeConfig { seed: 77, scale: 0.02 });
    let pages = v.sites[0].pages.iter().map(|p| (p.id.clone(), p.html.clone())).collect();
    (v, pages)
}

fn cfg_at(threads: usize) -> CeresConfig {
    let mut cfg = CeresConfig::new(77);
    cfg.threads = Some(threads);
    cfg
}

/// The marker `ceres-synth` bakes into armed pages and the marker
/// `ceres-core`'s fault hook detonates on are separate constants (synth
/// deliberately does not depend on core); they must never drift apart.
#[test]
fn fault_markers_agree_across_crates() {
    assert_eq!(hostile::FAULT_PANIC_MARKER, ceres::core::session::FAULT_PANIC_MARKER);
}

/// Every corpus page meets the fate its `Expect` claims, in one guarded
/// ingest session, and training still completes on the survivors.
#[test]
fn hostile_corpus_fates_match_their_expectations() {
    let (v, clean) = fixture();
    let kb = &v.kb;
    let corpus = hostile_corpus(42);
    let mut session = SiteSession::builder(kb).config(cfg_at(2)).build();
    session.ingest(clean.iter().cloned());
    session.try_ingest(corpus.iter().map(|p| (p.id.clone(), p.html.clone())));
    let trained = session.finish_training();
    let health = trained.health();

    // Exactly the pages the corpus expects quarantined, under exactly the
    // expected reasons — compared as multisets because the duplicate-id
    // pair shares one page id (first capture survives, re-crawl refused).
    let mut got: Vec<(&str, &'static str)> =
        health.quarantine.iter().map(|(id, e)| (id.as_str(), e.kind())).collect();
    let mut expected: Vec<(&str, &'static str)> = corpus
        .iter()
        .filter_map(|p| match p.expect {
            Expect::Quarantined(slug) => Some((p.id.as_str(), slug)),
            Expect::Survives => None,
        })
        .collect();
    got.sort_unstable();
    expected.sort_unstable();
    assert_eq!(got, expected);
    let survivors = corpus.iter().filter(|p| p.expect == Expect::Survives).count();
    assert_eq!(health.pages_ok, clean.len() + survivors);
    assert!(trained.stats().trained, "training must complete despite the poison");
}

/// Poisoning part of the crawl must not perturb what the survivors
/// produce: a session fed (good + poison) serves the eval pages
/// byte-identically to a session fed only the good pages — at every
/// thread count, and identically across thread counts.
#[test]
fn survivors_are_byte_identical_to_a_clean_run_at_every_thread_count() {
    let (v, clean) = fixture();
    let kb = &v.kb;
    let (train, eval) = clean.split_at(clean.len() / 2);
    let corpus = hostile_corpus(7);

    let mut reference: Option<Vec<Extraction>> = None;
    for threads in THREAD_COUNTS {
        let mut poisoned = SiteSession::builder(kb).config(cfg_at(threads)).build();
        poisoned.try_ingest(train.iter().cloned());
        poisoned.try_ingest(corpus.iter().filter_map(|p| match p.expect {
            Expect::Quarantined(_) => Some((p.id.clone(), p.html.clone())),
            Expect::Survives => None,
        }));
        let poisoned = poisoned.finish_training();
        assert!(poisoned.health().pages_quarantined() > 0);

        let mut pristine = SiteSession::builder(kb).config(cfg_at(threads)).build();
        pristine.ingest(train.iter().cloned());
        let pristine = pristine.finish_training();
        assert_eq!(pristine.health().pages_quarantined(), 0);

        let got = poisoned.extract_batch(eval);
        assert_eq!(got, pristine.extract_batch(eval), "threads={threads}");
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "threads={threads} diverged from threads=1"),
        }
    }
}

/// The serve path types every outcome and the `Ok`s flatten to the
/// fail-fast batch; a hostile tail quarantines without disturbing the
/// clean slots around it.
#[test]
fn try_extract_batch_isolates_hostile_pages_in_their_own_slots() {
    let (v, clean) = fixture();
    let kb = &v.kb;
    let (train, eval) = clean.split_at(clean.len() / 2);
    let mut session = SiteSession::builder(kb).config(cfg_at(2)).build();
    session.ingest(train.iter().cloned());
    let trained = session.finish_training();

    let mut served: Vec<(String, String)> = eval.to_vec();
    let poison_at = served.len();
    served.push(("blank".into(), hostile::blank_page()));
    served.extend(eval.iter().cloned().map(|(id, html)| (format!("again-{id}"), html)));

    let outcomes = trained.try_extract_batch(&served);
    assert_eq!(outcomes.len(), served.len());
    assert!(matches!(&outcomes[poison_at], ExtractOutcome::Failed(PageError::EmptyDom)));
    let flattened: Vec<Extraction> =
        outcomes.iter().filter_map(|o| o.extractions()).flatten().cloned().collect();
    let mut clean_only = served.clone();
    clean_only.remove(poison_at);
    assert_eq!(flattened, trained.extract_batch(&clean_only));
}

/// A mid-crawl redesign: healthy fixture pages keep the watchdog quiet,
/// then the drifted tail pushes the rolling unassigned rate over the
/// threshold and the signal fires.
#[test]
fn drift_watchdog_fires_on_a_template_drift_tail() {
    let (v, clean) = fixture();
    let kb = &v.kb;
    let (train, eval) = clean.split_at(clean.len() / 2);
    let mut session = SiteSession::builder(kb).config(cfg_at(1)).build();
    session.ingest(train.iter().cloned());
    let mut trained = session.finish_training();
    trained.set_drift(DriftConfig { window: 8, min_samples: 4, max_unassigned_rate: 0.5 });

    let mut dog = trained.drift_watchdog();
    for outcome in trained.try_extract_batch(eval) {
        assert!(
            !dog.observe_outcome(&outcome).retrain_suggested(),
            "healthy pages must not trip the watchdog"
        );
    }
    let drifted: Vec<(String, String)> = (0..8).map(hostile::drifted_page).collect();
    let signal = dog.observe_batch(&trained.try_extract_batch(&drifted));
    assert!(signal.retrain_suggested(), "redesign tail must fire the watchdog: {signal:?}");

    // The watchdog's evidence folds into the site's health ledger.
    trained.health_mut().absorb_watchdog(&dog);
    assert!(trained.health().assign_unassigned >= 8);
}

/// Armed pages are inert without the `fault-inject` feature: the marker
/// hides in an HTML comment, so a clean build serves an armed crawl
/// byte-identically to the unarmed one.
#[cfg(not(feature = "fault-inject"))]
#[test]
fn armed_pages_are_inert_on_clean_builds() {
    let (v, clean) = fixture();
    let kb = &v.kb;
    let (train, eval) = clean.split_at(clean.len() / 2);
    let mut session = SiteSession::builder(kb).config(cfg_at(2)).build();
    session.ingest(train.iter().cloned());
    let trained = session.finish_training();

    let mut armed: Vec<(String, String)> = eval.to_vec();
    FaultPlan::new(5, armed.len(), 4).arm_pages(&mut armed);
    assert_eq!(trained.extract_batch(&armed), trained.extract_batch(eval));
}

/// The real thing: seeded panics inside per-page work, contained to
/// their slots at every thread count, during both ingest and serve.
#[cfg(feature = "fault-inject")]
mod injected {
    use super::*;

    #[test]
    fn seeded_panics_are_contained_per_slot_at_every_thread_count() {
        let (v, clean) = fixture();
        let kb = &v.kb;
        let (train, eval) = clean.split_at(clean.len() / 2);
        let plan = FaultPlan::new(13, eval.len(), 3);
        let mut armed: Vec<(String, String)> = eval.to_vec();
        plan.arm_pages(&mut armed);

        // Panics unwind through the containment layer by design; silence
        // the default hook's per-panic backtrace for the whole module run.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));

        for threads in THREAD_COUNTS {
            let mut session = SiteSession::builder(kb).config(cfg_at(threads)).build();
            session.ingest(train.iter().cloned());
            let trained = session.finish_training();

            let outcomes = trained.try_extract_batch(&armed);
            let clean_outcomes = trained.try_extract_batch(eval);
            assert_eq!(outcomes.len(), armed.len());
            for (i, outcome) in outcomes.iter().enumerate() {
                if plan.is_poisoned(i) {
                    match outcome {
                        ExtractOutcome::Failed(PageError::Panicked { message }) => {
                            assert!(message.contains("injected fault"), "{message}");
                        }
                        other => panic!("slot {i} should have panicked, got {other:?}"),
                    }
                } else {
                    assert_eq!(outcome, &clean_outcomes[i], "threads={threads} slot={i}");
                }
            }
        }
        std::panic::set_hook(hook);
    }

    #[test]
    fn ingest_quarantines_panicking_pages_and_trains_the_rest() {
        let (v, clean) = fixture();
        let kb = &v.kb;
        let plan = FaultPlan::new(29, clean.len(), 4);
        let mut armed = clean.clone();
        plan.arm_pages(&mut armed);

        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut session = SiteSession::builder(kb).config(cfg_at(2)).build();
        session.try_ingest(armed.iter().cloned());
        let trained = session.finish_training();
        std::panic::set_hook(hook);

        let health = trained.health();
        let by: Vec<(&'static str, usize)> = health.quarantined_by_reason().to_vec();
        assert_eq!(
            by.iter().find(|(k, _)| *k == "panicked").map(|(_, n)| *n),
            Some(plan.n_poisoned())
        );
        assert_eq!(health.pages_ok, clean.len() - plan.n_poisoned());
        assert!(trained.stats().trained);
    }
}
