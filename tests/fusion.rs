//! Integration test: pipeline extractions → knowledge fusion → linkage,
//! on overlapping synthetic sites backed by one world.

use ceres::eval::harness::{run_ceres_on_site, EvalProtocol, SystemKind};
use ceres::fusion::{fuse, link, FusionConfig, Linkage, SourcedExtraction};
use ceres::prelude::CeresConfig;
use ceres::synth::commoncrawl::{cc_site_specs, generate_cc_site};
use ceres::synth::movie_world::{KbBias, MovieWorld, MovieWorldConfig};

#[test]
fn cross_site_fusion_corroborates_shared_facts() {
    let world = MovieWorld::generate(MovieWorldConfig {
        seed: 21,
        n_people: 600,
        n_films: 260,
        n_series: 4,
        title_collision_share: 0.02,
    });
    let kb = world.build_kb(&KbBias::default()).kb;
    // Two head-biased sites share their famous films.
    let specs: Vec<_> = cc_site_specs()
        .into_iter()
        .filter(|s| s.name == "themoviedb.org" || s.name == "britflicks.com")
        .collect();
    let cfg = CeresConfig::new(21);

    let mut sourced: Vec<SourcedExtraction> = Vec::new();
    for spec in &specs {
        let site = generate_cc_site(&world, spec, 21, 0.004);
        let run =
            run_ceres_on_site(&kb, &site, EvalProtocol::WholeSite, &cfg, SystemKind::CeresFull);
        for extraction in run.extractions {
            sourced.push(SourcedExtraction { site: spec.name.to_string(), extraction });
        }
    }
    assert!(!sourced.is_empty(), "no extractions to fuse");

    let fused =
        fuse(&sourced, |p| kb.ontology().pred_name(p).to_string(), &FusionConfig::default());
    assert!(!fused.is_empty());
    // Fused output is sorted by belief and beliefs are valid probabilities.
    for w in fused.windows(2) {
        assert!(w[0].belief >= w[1].belief);
    }
    assert!(fused.iter().all(|f| (0.0..1.0).contains(&f.belief)));

    // Linking resolves at least some subjects into the seed KB and flags
    // some as new entities (the long tail).
    let linked = link(&kb, &fused);
    let n_linked = linked.iter().filter(|l| matches!(l.subject, Linkage::Linked(_))).count();
    let n_new = linked.iter().filter(|l| matches!(l.subject, Linkage::NewEntity)).count();
    assert!(n_linked > 0, "nothing linked");
    assert!(n_new > 0, "no new entities — KB coverage should be partial");
}
