//! Integration tests over the synthetic corpora: gold consistency between
//! the generator and the parsed DOM, KB/page overlap contracts.

use ceres::dom::parse_html;
use ceres::synth::commoncrawl;
use ceres::synth::imdb;
use ceres::synth::swde::{book_vertical, SwdeConfig};

#[test]
fn every_gold_fact_resolves_to_a_dom_field() {
    let d = imdb::generate(11, 0.01);
    for site in [&d.movie_site, &d.person_site] {
        for page in site.pages.iter().take(20) {
            let doc = parse_html(&page.html);
            let gt_ids: std::collections::HashSet<u32> = doc
                .text_fields()
                .iter()
                .filter_map(|&f| doc.node(f).attr("data-gt").and_then(|v| v.parse().ok()))
                .collect();
            for fact in &page.gold.facts {
                assert!(
                    gt_ids.contains(&fact.gt_id),
                    "site {} page {} fact {:?} lost in parsing",
                    site.name,
                    page.id,
                    fact
                );
            }
        }
    }
}

#[test]
fn gold_object_text_matches_dom_text() {
    let d = imdb::generate(11, 0.01);
    let page = &d.movie_site.pages[0];
    let doc = parse_html(&page.html);
    for fact in &page.gold.facts {
        let field = doc
            .text_fields()
            .into_iter()
            .find(|&f| doc.node(f).attr("data-gt") == Some(fact.gt_id.to_string().as_str()))
            .expect("field exists");
        assert_eq!(doc.own_text(field), fact.object, "gold text mismatch for {fact:?}");
    }
}

#[test]
fn book_seed_kb_covers_exactly_site_zero() {
    let (v, world) = book_vertical(SwdeConfig { seed: 11, scale: 0.01 });
    // Every site-0 book is in the KB.
    for page in &v.sites[0].pages {
        let t = page.gold.topic.as_deref().unwrap();
        assert!(!v.kb.match_text(t).is_empty(), "site-0 book {t} missing from KB");
    }
    // The universe is much larger than the KB.
    assert!(world.books.len() > v.sites[0].pages.len() * 5);
}

#[test]
fn commoncrawl_specs_sum_to_paper_totals() {
    let specs = commoncrawl::cc_site_specs();
    assert_eq!(specs.len(), 33);
    let total: usize = specs.iter().map(|s| s.paper_pages).sum();
    assert_eq!(total, 433_832, "Table 8 total page count");
    // Every language pack referenced by a spec exists.
    for s in &specs {
        let pack = ceres::synth::style::label_pack(s.language);
        assert!(!pack.director.is_empty());
    }
}

#[test]
fn commoncrawl_generation_is_deterministic() {
    let a = commoncrawl::generate(11, 0.002);
    let b = commoncrawl::generate(11, 0.002);
    assert_eq!(a.kb.n_triples(), b.kb.n_triples());
    for (sa, sb) in a.sites.iter().zip(&b.sites) {
        assert_eq!(sa.pages.len(), sb.pages.len(), "{}", sa.name);
    }
    assert_eq!(a.sites[0].pages[0].html, b.sites[0].pages[0].html);
}
