//! Equivalence suite for the streaming train-once/extract-many API:
//! `SiteSession` → `TrainedSite` must be **byte-identical** to the batch
//! `run_site` wrapper fed the same pages, at threads {1, 2, 8} and at any
//! ingest-ahead cap, and out-of-order parse completions inside the ingest
//! reorder buffer must never change output.

use ceres::core::page::PageView;
use ceres::eval::harness::{protocol_pages, EvalProtocol};
use ceres::prelude::*;
use ceres::synth::swde::{movie_vertical, SwdeConfig};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn fixture() -> (ceres::synth::swde::SwdeVertical, Site) {
    let (v, _) = movie_vertical(SwdeConfig { seed: 77, scale: 0.02 });
    let site = v.sites[0].clone();
    (v, site)
}

fn assert_identical(a: &SiteRun, b: &SiteRun, label: &str) {
    assert_eq!(a.stats, b.stats, "{label}: stats diverged");
    assert_eq!(a.extractions, b.extractions, "{label}: extractions diverged");
    assert_eq!(a.topic_records, b.topic_records, "{label}: topic records diverged");
    assert_eq!(a.annotation_records, b.annotation_records, "{label}: annotation records diverged");
}

/// Session path for the split-halves protocol: ingest the train half page
/// by page, train once, serve the eval half from the frozen artifact.
fn session_run_split(
    kb: &Kb,
    train: &[(String, String)],
    eval: &[(String, String)],
    cfg: &CeresConfig,
) -> SiteRun {
    let mut session =
        SiteSession::builder(kb).config(cfg.clone()).mode(AnnotationMode::Full).build();
    for (id, html) in train {
        session.push_page(id.clone(), html.clone());
    }
    let trained = session.finish_training();
    let extractions = trained.extract_batch(eval);
    trained.into_site_run(extractions, eval.len())
}

/// Session path for the whole-site protocol (extract from the training
/// pages themselves).
fn session_run_whole(kb: &Kb, pages: &[(String, String)], cfg: &CeresConfig) -> SiteRun {
    let mut session = SiteSession::builder(kb).config(cfg.clone()).build();
    session.ingest(pages.iter().cloned());
    let trained = session.finish_training();
    let n = trained.n_training_pages();
    let extractions = trained.extract_training_pages();
    trained.into_site_run(extractions, n)
}

#[test]
fn session_equals_run_site_on_split_halves_at_every_thread_count() {
    let (v, site) = fixture();
    let (train, eval) = protocol_pages(&site, EvalProtocol::SplitHalves);
    let eval = eval.expect("split protocol has an eval half");

    let cfg1 = CeresConfig::new(7).with_threads(1);
    let reference = run_site(&v.kb, &train, Some(&eval), &cfg1, AnnotationMode::Full);
    assert!(reference.stats.trained, "fixture must train: {:?}", reference.stats);
    assert!(!reference.extractions.is_empty());

    for &threads in &THREAD_COUNTS {
        let cfg = CeresConfig::new(7).with_threads(threads);
        let batch = run_site(&v.kb, &train, Some(&eval), &cfg, AnnotationMode::Full);
        assert_identical(&reference, &batch, &format!("run_site threads={threads}"));
        let session = session_run_split(&v.kb, &train, &eval, &cfg);
        assert_identical(&reference, &session, &format!("session threads={threads}"));
    }
}

#[test]
fn session_equals_run_site_on_whole_site_at_every_thread_count() {
    let (v, site) = fixture();
    let (pages, none) = protocol_pages(&site, EvalProtocol::WholeSite);
    assert!(none.is_none());

    let cfg1 = CeresConfig::new(7).with_threads(1);
    let reference = run_site(&v.kb, &pages, None, &cfg1, AnnotationMode::Full);
    for &threads in &THREAD_COUNTS {
        let cfg = CeresConfig::new(7).with_threads(threads);
        let batch = run_site(&v.kb, &pages, None, &cfg, AnnotationMode::Full);
        assert_identical(&reference, &batch, &format!("run_site threads={threads}"));
        let session = session_run_whole(&v.kb, &pages, &cfg);
        assert_identical(&reference, &session, &format!("session threads={threads}"));
    }
}

#[test]
fn extract_page_serves_unseen_pages_one_at_a_time() {
    // Serving page-at-a-time through TrainedSite::extract_page must equal
    // the batched serve — and the unseen (eval-half) pages must actually
    // land in trained template clusters.
    let (v, site) = fixture();
    let (train, eval) = protocol_pages(&site, EvalProtocol::SplitHalves);
    let eval = eval.expect("split protocol has an eval half");

    let cfg = CeresConfig::new(7).with_threads(2);
    let mut session = SiteSession::builder(&v.kb).config(cfg).build();
    session.ingest(train);
    let trained = session.finish_training();
    assert!(trained.stats().trained);

    let batched = trained.extract_batch(&eval);
    let mut one_at_a_time = Vec::new();
    let mut assigned = 0usize;
    for (id, html) in &eval {
        let view = PageView::build(id, html, &v.kb);
        if let Some(ci) = trained.assign(&view) {
            assigned += 1;
            assert!(
                ci < trained.stats().n_clusters,
                "assignment {ci} out of range ({} clusters)",
                trained.stats().n_clusters
            );
        }
        one_at_a_time.extend(trained.extract_view(&view));
        // extract_page and extract_view agree on the same input.
        assert_eq!(trained.extract_page(id, html), trained.extract_view(&view), "page {id}");
    }
    assert_eq!(batched, one_at_a_time, "batched vs one-at-a-time serve diverged");
    assert!(!batched.is_empty(), "eval half must produce extractions");
    assert!(
        assigned * 2 >= eval.len(),
        "most unseen pages should match a trained template: {assigned}/{}",
        eval.len()
    );
}

#[test]
fn trained_site_is_shared_across_serving_threads() {
    // The serve phase is &self: four OS threads extracting from the same
    // TrainedSite concurrently must each see the single-thread answers.
    let (v, site) = fixture();
    let (train, eval) = protocol_pages(&site, EvalProtocol::SplitHalves);
    let eval = eval.expect("split protocol has an eval half");

    let mut session =
        SiteSession::builder(&v.kb).config(CeresConfig::new(7).with_threads(2)).build();
    session.ingest(train);
    let trained = session.finish_training();
    let reference: Vec<Vec<Extraction>> =
        eval.iter().map(|(id, html)| trained.extract_page(id, html)).collect();

    std::thread::scope(|s| {
        for worker in 0..4 {
            let trained = &trained;
            let eval = &eval;
            let reference = &reference;
            s.spawn(move || {
                // Each worker walks the pages at a different stride so the
                // interleaving differs per thread.
                for k in 0..eval.len() {
                    let i = (k * (worker + 1) + worker) % eval.len();
                    let (id, html) = &eval[i];
                    assert_eq!(&trained.extract_page(id, html), &reference[i], "page {id}");
                }
            });
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The reorder buffer never reorders: for any cap, thread count, and
    /// worker completion order (scrambled by item-dependent spin work),
    /// results surface in input order.
    #[test]
    fn stream_map_preserves_input_order(
        items in proptest::collection::vec(0u64..512, 0..48),
        cap in 1usize..9,
        threads in 1usize..9,
    ) {
        let work = |x: u64| -> u64 {
            let mut acc = x;
            for _ in 0..(x % 7) * 150 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            }
            std::hint::black_box(acc);
            x.wrapping_mul(31).wrapping_add(7)
        };
        let expect: Vec<u64> = items.iter().map(|&x| work(x)).collect();
        let rt = Runtime::new(threads);
        let mut sm = rt.stream(cap, work);
        let mut got = Vec::new();
        for &x in &items {
            if let Some(r) = sm.push(x) {
                got.push(r);
            }
        }
        got.extend(sm.finish());
        prop_assert_eq!(got, expect, "cap={} threads={}", cap, threads);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Out-of-order `push_page` parse completions (any thread count × any
    /// ingest-ahead cap) never change what the session trains or extracts:
    /// every configuration reproduces the sequential reference run.
    #[test]
    fn session_output_is_invariant_to_ingest_interleaving(
        cap in 1usize..7,
        threads in 2usize..9,
    ) {
        // Fixture and sequential reference are deterministic: build once,
        // reuse across every generated (cap, threads) case.
        type Shared = (ceres::synth::swde::SwdeVertical, Vec<(String, String)>, SiteRun);
        static SHARED: std::sync::OnceLock<Shared> = std::sync::OnceLock::new();
        let (v, pages, reference) = SHARED.get_or_init(|| {
            let (v, site) = fixture();
            let pages: Vec<(String, String)> =
                site.pages.iter().take(24).map(|p| (p.id.clone(), p.html.clone())).collect();
            let mut s = SiteSession::builder(&v.kb)
                .config(CeresConfig::new(7).with_threads(1))
                .build();
            s.ingest(pages.iter().cloned());
            let t = s.finish_training();
            let n = t.n_training_pages();
            let ex = t.extract_training_pages();
            let reference = t.into_site_run(ex, n);
            (v, pages, reference)
        });

        let mut s = SiteSession::builder(&v.kb)
            .config(CeresConfig::new(7).with_threads(threads))
            .ingest_ahead(cap)
            .build();
        for (id, html) in pages {
            s.push_page(id.clone(), html.clone());
        }
        let t = s.finish_training();
        let n = t.n_training_pages();
        let ex = t.extract_training_pages();
        let run = t.into_site_run(ex, n);
        prop_assert_eq!(&reference.stats, &run.stats, "cap={} threads={}", cap, threads);
        prop_assert_eq!(&reference.extractions, &run.extractions, "cap={} threads={}", cap, threads);
        prop_assert_eq!(
            &reference.topic_records, &run.topic_records,
            "cap={} threads={}", cap, threads
        );
        prop_assert_eq!(
            &reference.annotation_records, &run.annotation_records,
            "cap={} threads={}", cap, threads
        );
    }
}
