//! Equivalence suite for the allocation-free hot paths: the streaming
//! feature sinks, the sharded borrow-returning KB matcher, and the
//! pool-backed runtime must each be **byte-identical** to their
//! straightforward reference implementations on realistic (SWDE movie
//! vertical) data.

use ceres::core::config::FeatureConfig;
use ceres::core::features::{FeatureScratch, FeatureSink, FeatureSpace, NameArena};
use ceres::core::page::PageView;
use ceres::kb::{Kb, KbBuilder, MatcherConfig, ValueId, ValueKind};
use ceres::ml::{FeatureDict, SparseVec};
use ceres::prelude::*;
use ceres::synth::swde::{movie_vertical, SwdeConfig};
use ceres::text::normalize;
use proptest::prelude::*;

/// Rebuild `kb` from its own content with a different shard count. Values
/// are re-interned in id order, so `ValueId`s are preserved and match
/// results are directly comparable.
fn rebuild_with_shards(kb: &Kb, n_shards: usize) -> Kb {
    let mut b = KbBuilder::new(kb.ontology().clone())
        .with_config(MatcherConfig { n_shards, ..MatcherConfig::default() });
    for i in 0..kb.n_values() as u32 {
        let v = ValueId(i);
        let id = match kb.kind(v) {
            ValueKind::Entity(ty) => b.entity(ty, kb.canonical(v)),
            ValueKind::Literal => b.literal(kb.canonical(v)),
        };
        assert_eq!(id, v, "re-interning must preserve value ids");
        for alias in kb.aliases(v) {
            b.alias(id, alias);
        }
    }
    for t in kb.triples() {
        b.triple(t.subject, t.pred, t.object);
    }
    b.build()
}

#[test]
fn sharded_matcher_equals_unsharded_on_movie_vertical() {
    let (v, _) = movie_vertical(SwdeConfig { seed: 13, scale: 0.02 });
    let kb = &v.kb; // default config: 16 shards
    let unsharded = rebuild_with_shards(kb, 1);
    let wide = rebuild_with_shards(kb, 64);
    assert_eq!(unsharded.match_shards().n_shards(), 1);
    assert_eq!(wide.match_shards().n_shards(), 64);

    // Query corpus: every text field of real pages (exact hits, fuzzy
    // hits, and misses), plus every canonical name and alias.
    let mut queries: Vec<String> = Vec::new();
    for site in &v.sites {
        for page in site.pages.iter().take(10) {
            let pv = PageView::build(&page.id, &page.html, kb);
            queries.extend(pv.fields.iter().map(|f| f.text.clone()));
        }
    }
    for i in 0..kb.n_values() as u32 {
        queries.push(kb.canonical(ValueId(i)).to_string());
        queries.extend(kb.aliases(ValueId(i)).iter().cloned());
    }
    queries.push(String::new());
    queries.push("no such value anywhere".to_string());
    assert!(queries.len() > 500, "corpus too small to be meaningful: {}", queries.len());

    let mut hits = 0usize;
    for q in &queries {
        let reference = unsharded.match_text(q);
        assert_eq!(kb.match_text(q), reference, "16-shard vs 1-shard diverged on {q:?}");
        assert_eq!(wide.match_text(q), reference, "64-shard vs 1-shard diverged on {q:?}");
        // The pre-normalized entry point must agree with the raw one.
        assert_eq!(kb.match_norm(&normalize(q)), reference, "match_norm diverged on {q:?}");
        hits += usize::from(!reference.is_empty());
    }
    assert!(hits > 100, "corpus produced too few matches: {hits}");
}

#[test]
fn sink_vectors_equal_reference_path_on_movie_vertical() {
    // Training (interning) and frozen (lookup) sink paths vs the owned
    // Vec<String> reference, on real template pages, with one scratch
    // reused across every node — exactly the hot loops' usage pattern.
    let (v, _) = movie_vertical(SwdeConfig { seed: 13, scale: 0.02 });
    let site = &v.sites[0];
    let views: Vec<PageView> =
        site.pages.iter().take(12).map(|p| PageView::build(&p.id, &p.html, &v.kb)).collect();
    let refs: Vec<&PageView> = views.iter().collect();

    let mut by_sink = FeatureSpace::new(&refs, FeatureConfig::default());
    let mut by_ref = by_sink.clone();
    let mut scratch = FeatureScratch::new();
    for pv in &views {
        for f in &pv.fields {
            let a = by_sink.features_with(pv, f.node, &mut scratch);
            let names = by_ref.collect_names(pv, f.node);
            let idx: Vec<u32> = names.iter().filter_map(|n| by_ref.dict.intern(n)).collect();
            assert_eq!(
                a,
                SparseVec::from_indices(idx),
                "training path: {} {:?}",
                pv.page_id,
                f.node
            );
        }
    }
    assert_eq!(by_sink.dict.len(), by_ref.dict.len(), "dictionaries must grow identically");
    assert!(by_sink.dict.len() > 100, "fixture too small: {} features", by_sink.dict.len());

    by_sink.freeze();
    by_ref.freeze();
    for pv in &views {
        for f in &pv.fields {
            let a = by_sink.features_frozen_with(pv, f.node, &mut scratch);
            let names = by_ref.collect_names(pv, f.node);
            let idx: Vec<u32> = names.iter().filter_map(|n| by_ref.dict.get(n)).collect();
            assert_eq!(a, SparseVec::from_indices(idx), "frozen path: {} {:?}", pv.page_id, f.node);
        }
    }
}

#[test]
fn pool_par_map_equals_spawn_per_call_on_page_parsing() {
    // The pool-backed default vs the kept spawn-per-call reference, over
    // real page work (normalized page text), at the canonical thread set.
    let (v, _) = movie_vertical(SwdeConfig { seed: 13, scale: 0.02 });
    let site = &v.sites[0];
    let pages: Vec<(String, String)> =
        site.pages.iter().map(|p| (p.id.clone(), p.html.clone())).collect();
    let work = |(id, html): &(String, String)| {
        let pv = PageView::build(id, html, &v.kb);
        let n_matches: usize = pv.fields.iter().map(|f| f.matches.len()).sum();
        format!("{id}:{}:{}", pv.fields.len(), n_matches)
    };
    let reference = Runtime::sequential().par_map(&pages, work);
    for threads in [1, 2, 8] {
        let rt = Runtime::new(threads);
        assert_eq!(rt.par_map(&pages, work), reference, "pool threads={threads}");
        for chunk in [1, 4, 64] {
            assert_eq!(
                rt.par_map_spawn_chunked(&pages, chunk, work),
                reference,
                "spawn threads={threads} chunk={chunk}"
            );
        }
    }
}

proptest! {
    /// Random feature-name sets round-trip through the interning path
    /// (dict + reusable index buffer) identically to the reference
    /// (collect, intern, from_indices) — including after freezing.
    #[test]
    fn sink_dict_round_trip(
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-zA-Z0-9:=@|^/ ]{0,16}", 0..12),
            1..8,
        )
    ) {
        // Streaming path: shared dict + reusable buffer across rows.
        let mut dict = FeatureDict::new();
        let mut buf: Vec<u32> = Vec::new();
        let mut streamed: Vec<SparseVec> = Vec::new();
        for row in &rows {
            for name in row {
                if let Some(i) = dict.intern(name) {
                    buf.push(i);
                }
            }
            streamed.push(SparseVec::from_indices_buf(&mut buf));
        }
        // Reference path: fresh index vec per row.
        let mut ref_dict = FeatureDict::new();
        let reference: Vec<SparseVec> = rows
            .iter()
            .map(|row| {
                SparseVec::from_indices(
                    row.iter().filter_map(|n| ref_dict.intern(n)).collect(),
                )
            })
            .collect();
        prop_assert_eq!(&streamed, &reference);
        prop_assert_eq!(dict.len(), ref_dict.len());
        // Frozen round-trip: every name resolves identically in both.
        dict.freeze();
        for row in &rows {
            for name in row {
                prop_assert_eq!(dict.get(name), ref_dict.get(name));
            }
        }
    }

    /// Random name sets survive the NameArena pack/replay round-trip with
    /// rows and intra-row order intact (the parallel-collection format).
    #[test]
    fn name_arena_round_trip(
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-zA-Z0-9:=@|]{0,16}", 0..12),
            0..8,
        )
    ) {
        let mut arena = NameArena::default();
        for row in &rows {
            for name in row {
                arena.accept(name);
            }
            arena.end_row();
        }
        prop_assert_eq!(arena.n_rows(), rows.len());
        for (r, row) in rows.iter().enumerate() {
            let replayed: Vec<&str> = arena.row(r).collect();
            let expected: Vec<&str> = row.iter().map(|s| s.as_str()).collect();
            prop_assert_eq!(replayed, expected, "row {}", r);
        }
    }
}
